"""Scheduling-as-a-service: protocol, coalescing, cancellation, shutdown.

The load-bearing contracts pinned here:

* the structure-only net serialization round-trips (same structural
  fingerprint, byte-identical schedules);
* N concurrent requests for one ``(fingerprint, options, source)`` key run
  exactly **one** live EP search (``LIVE_SEARCH_COUNTERS`` delta equals a
  single serial search) and every requester receives byte-identical
  results;
* a cancelled or timed-out waiter never tears down the shared in-flight
  search;
* graceful shutdown drains in-flight requests before the listener dies.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.apps import paper_nets
from repro.apps.divisors import DIVISORS_SOURCE
from repro.apps.workloads import producer_consumer_source, random_choice_net
from repro.petrinet.fingerprint import structural_fingerprint
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.serialize import schedule_fingerprint
from repro.scheduling.warmstart import LIVE_SEARCH_COUNTERS
from repro.serve import (
    ProtocolError,
    SchedulingService,
    net_from_dict,
    net_to_dict,
    options_from_dict,
    start_server,
)
from repro.serve.protocol import (
    canonical_json,
    decode_line,
    network_from_spec,
    resolve_sources,
)
from repro.serve.service import LatencyHistogram


async def _request(port: int, payload: dict) -> dict:
    from repro.serve import protocol

    # a schedule response line can exceed asyncio's default 64 KiB limit
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", port, limit=protocol.MAX_LINE_BYTES
    )
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    writer.close()
    assert line, "server closed the connection without answering"
    return json.loads(line)


def _slow(delay: float):
    """A search wrapper adding ``delay`` so concurrent requests overlap."""

    def wrapper(net, source, **kwargs):
        time.sleep(delay)
        return find_schedule(net, source, **kwargs)

    return wrapper


# ---------------------------------------------------------------------------
# protocol: net serialization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "builder,source",
    [
        (paper_nets.figure_4a, "a"),
        (paper_nets.figure_5, "a"),
        (paper_nets.figure_6, "d"),
        (paper_nets.figure_8, "a"),
    ],
)
def test_net_roundtrip_preserves_fingerprint_and_schedule(builder, source):
    net = builder()
    clone = net_from_dict(net_to_dict(net))
    assert structural_fingerprint(clone) == structural_fingerprint(net)
    original = find_schedule(net, source, raise_on_failure=True)
    replayed = find_schedule(clone, source, raise_on_failure=True)
    assert schedule_fingerprint(replayed.schedule) == schedule_fingerprint(
        original.schedule
    )


def test_net_to_dict_is_deterministic():
    first = canonical_json(net_to_dict(paper_nets.figure_5()))
    second = canonical_json(net_to_dict(paper_nets.figure_5()))
    assert first == second


def test_net_roundtrip_keeps_place_attributes():
    net = random_choice_net(3, seed=7)
    clone = net_from_dict(net_to_dict(net))
    assert set(clone.places) == set(net.places)
    assert set(clone.transitions) == set(net.transitions)
    assert clone.initial_tokens == net.initial_tokens
    for name, place in net.places.items():
        assert clone.places[name].bound == place.bound
    for name, transition in net.transitions.items():
        assert clone.transitions[name].source_kind == transition.source_kind


def test_net_from_dict_rejects_garbage():
    with pytest.raises(ProtocolError) as excinfo:
        net_from_dict({"places": [{"name": "p"}], "arcs": [["p", "ghost", 1]]})
    assert excinfo.value.kind == "bad-net"
    with pytest.raises(ProtocolError):
        net_from_dict("not a net")


# ---------------------------------------------------------------------------
# protocol: options and sources
# ---------------------------------------------------------------------------


def test_options_from_dict_defaults_and_whitelist():
    assert options_from_dict(None) == SchedulerOptions()
    options = options_from_dict({"backend": "scalar", "max_nodes": 500})
    assert options.backend == "scalar"
    assert options.max_nodes == 500
    with pytest.raises(ProtocolError) as excinfo:
        options_from_dict({"termination": "nope"})
    assert excinfo.value.kind == "bad-options"
    with pytest.raises(ProtocolError):
        options_from_dict({"backend": "warp-drive"})
    with pytest.raises(ProtocolError):
        options_from_dict({"max_nodes": -1})


def test_resolve_sources_validation():
    net = paper_nets.figure_5()
    assert resolve_sources(net, None) == net.uncontrollable_sources()
    assert resolve_sources(net, ["a"]) == ["a"]
    with pytest.raises(ProtocolError) as excinfo:
        resolve_sources(net, ["ghost"])
    assert excinfo.value.kind == "unknown-source"
    with pytest.raises(ProtocolError):
        resolve_sources(net, [])


def test_network_from_spec_auto_environment():
    network = network_from_spec({"program": DIVISORS_SOURCE})
    from repro.flowc.linker import link

    system = link(network)
    assert "src.divisors.in" in system.net.transitions


def test_decode_line_rejects_non_json():
    with pytest.raises(ProtocolError) as excinfo:
        decode_line(b"{not json")
    assert excinfo.value.kind == "bad-json"
    with pytest.raises(ProtocolError):
        decode_line(b'"a bare string"')


def test_latency_histogram_buckets():
    hist = LatencyHistogram()
    hist.observe(0.0005)
    hist.observe(0.003)
    hist.observe(120.0)
    snap = hist.as_dict()
    assert snap["count"] == 3
    assert snap["buckets"]["<=1ms"] == 1
    assert snap["buckets"]["<=4ms"] == 1
    assert snap["buckets"][">65.536s"] == 1


# ---------------------------------------------------------------------------
# end-to-end: schedule requests over TCP
# ---------------------------------------------------------------------------


def test_server_schedules_serialized_net():
    async def scenario():
        server = await start_server(max_workers=2)
        try:
            response = await _request(
                server.port,
                {
                    "id": "r1",
                    "op": "schedule",
                    "net": net_to_dict(paper_nets.figure_5()),
                    "sources": ["a"],
                },
            )
        finally:
            await server.shutdown()
        return response

    response = asyncio.run(scenario())
    assert response["ok"] and response["id"] == "r1"
    (result,) = response["results"]
    serial = find_schedule(paper_nets.figure_5(), "a", raise_on_failure=True)
    assert result["schedule_fingerprint"] == schedule_fingerprint(serial.schedule)
    assert result["counters"]["nodes_expanded"] == serial.counters.nodes_expanded
    assert result["success"] and not result["from_cache"]


def test_server_schedules_flowc_program():
    async def scenario():
        server = await start_server(max_workers=2)
        try:
            response = await _request(
                server.port,
                {"op": "schedule", "flowc": {"program": DIVISORS_SOURCE}},
            )
        finally:
            await server.shutdown()
        return response

    response = asyncio.run(scenario())
    assert response["ok"], response
    (result,) = response["results"]
    assert result["source"] == "src.divisors.in"
    assert result["success"]


def test_server_schedules_flowc_network_with_channels():
    spec = {
        "program": producer_consumer_source(4),
        "channels": [{"source": "producer.data", "target": "consumer.data", "bound": 4}],
    }

    async def scenario():
        server = await start_server(max_workers=2)
        try:
            return await _request(server.port, {"op": "schedule", "flowc": spec})
        finally:
            await server.shutdown()

    response = asyncio.run(scenario())
    assert response["ok"], response
    (result,) = response["results"]
    assert result["source"] == "src.producer.trigger"
    assert result["success"]


def test_server_error_envelopes():
    async def scenario():
        server = await start_server(max_workers=1)
        port = server.port
        try:
            bad_json = await _request(port, {})  # no net/flowc
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            raw = json.loads(await reader.readline())
            writer.close()
            unknown_op = await _request(port, {"op": "dance"})
            unknown_source = await _request(
                port,
                {
                    "op": "schedule",
                    "net": net_to_dict(paper_nets.figure_5()),
                    "sources": ["ghost"],
                },
            )
        finally:
            await server.shutdown()
        return bad_json, raw, unknown_op, unknown_source

    bad_request, bad_json, unknown_op, unknown_source = asyncio.run(scenario())
    assert not bad_request["ok"] and bad_request["error"]["type"] == "bad-request"
    assert not bad_json["ok"] and bad_json["error"]["type"] == "bad-json"
    assert not unknown_op["ok"] and unknown_op["error"]["type"] == "bad-request"
    assert not unknown_source["ok"]
    assert unknown_source["error"]["type"] == "unknown-source"


def test_stats_endpoint_reports_counters_and_histograms():
    async def scenario():
        server = await start_server(max_workers=1)
        try:
            await _request(
                server.port,
                {"op": "schedule", "net": net_to_dict(paper_nets.figure_5())},
            )
            return await _request(server.port, {"op": "stats"})
        finally:
            await server.shutdown()

    response = asyncio.run(scenario())
    assert response["ok"]
    stats = response["stats"]
    for key in (
        "requests",
        "responses",
        "coalesced",
        "cache_hits",
        "live_searches",
        "queue",
        "latency",
        "warmstart",
    ):
        assert key in stats, key
    assert stats["requests"] == 1 and stats["responses"] == 1
    assert stats["live_searches"] == 2  # figure_5 has two sources
    assert stats["latency"]["search"]["count"] == 2
    assert stats["queue"]["max_workers"] == 1
    assert response["server"]["draining"] is False


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------


def test_coalescing_runs_one_live_search_for_n_clients():
    clients = 12
    serial = find_schedule(paper_nets.figure_5(), "a", raise_on_failure=True)

    async def scenario():
        server = await start_server(max_workers=2)
        server.service._search_fn = _slow(0.25)
        payload = {
            "op": "schedule",
            "net": net_to_dict(paper_nets.figure_5()),
            "sources": ["a"],
        }
        before = LIVE_SEARCH_COUNTERS.nodes_expanded
        try:
            responses = await asyncio.gather(
                *[_request(server.port, payload) for _ in range(clients)]
            )
        finally:
            await server.shutdown()
        delta = LIVE_SEARCH_COUNTERS.nodes_expanded - before
        return responses, delta, server.service.snapshot()

    responses, delta, stats = asyncio.run(scenario())
    # exactly one live EP search happened, for all twelve clients
    assert delta == serial.counters.nodes_expanded
    assert stats["live_searches"] == 1
    assert stats["coalesced"] == clients - 1
    assert stats["errors"] == 0
    # and every client received byte-identical results
    bodies = {canonical_json(response["results"]) for response in responses}
    assert len(bodies) == 1
    assert all(response["ok"] for response in responses)


def test_requests_after_completion_hit_l1_not_coalesce():
    async def scenario():
        server = await start_server(max_workers=1)
        payload = {
            "op": "schedule",
            "net": net_to_dict(paper_nets.figure_6()),
            "sources": ["a"],
        }
        try:
            first = await _request(server.port, payload)
            second = await _request(server.port, payload)
        finally:
            await server.shutdown()
        return first, second, server.service.snapshot()

    first, second, stats = asyncio.run(scenario())
    assert not first["results"][0]["from_cache"]
    assert second["results"][0]["from_cache"]
    assert stats["coalesced"] == 0 and stats["l1_hits"] == 1
    assert (
        first["results"][0]["schedule_fingerprint"]
        == second["results"][0]["schedule_fingerprint"]
    )


def test_distinct_options_do_not_coalesce():
    async def scenario():
        server = await start_server(max_workers=2)
        server.service._search_fn = _slow(0.15)
        net = net_to_dict(paper_nets.figure_5())
        try:
            responses = await asyncio.gather(
                _request(
                    server.port,
                    {"op": "schedule", "net": net, "sources": ["a"]},
                ),
                _request(
                    server.port,
                    {
                        "op": "schedule",
                        "net": net,
                        "sources": ["a"],
                        "options": {"backend": "scalar"},
                    },
                ),
            )
        finally:
            await server.shutdown()
        return responses, server.service.snapshot()

    responses, stats = asyncio.run(scenario())
    assert stats["coalesced"] == 0
    assert stats["live_searches"] == 2
    fingerprints = {r["results"][0]["schedule_fingerprint"] for r in responses}
    assert len(fingerprints) == 1  # backends are schedule-equivalent


# ---------------------------------------------------------------------------
# cancellation and timeouts
# ---------------------------------------------------------------------------


def test_cancelled_waiter_does_not_kill_shared_search():
    """A waiter task cancelled mid-flight leaves the search running."""

    async def scenario():
        service = SchedulingService(max_workers=1)
        service._search_fn = _slow(0.3)
        net = paper_nets.figure_5()
        options = SchedulerOptions()
        # precomputed so the second waiter keys immediately instead of
        # queueing its fingerprint computation behind the busy worker
        fingerprint = structural_fingerprint(net)
        first = asyncio.create_task(
            service.schedule_source(net, "a", options, fingerprint=fingerprint)
        )
        await asyncio.sleep(0.05)  # let it register in the single-flight map
        second = asyncio.create_task(
            service.schedule_source(net, "a", options, fingerprint=fingerprint)
        )
        await asyncio.sleep(0.05)
        first.cancel()
        try:
            await first
        except asyncio.CancelledError:
            pass
        payload = await second
        service.close()
        return payload, service.snapshot()

    payload, stats = asyncio.run(scenario())
    assert payload["success"]
    assert stats["live_searches"] == 1
    assert stats["coalesced"] == 1


def test_disconnected_client_does_not_kill_shared_search():
    """A client that drops its socket mid-request leaves the search running."""
    serial = find_schedule(paper_nets.figure_6(), "a", raise_on_failure=True)

    async def scenario():
        server = await start_server(max_workers=1)
        server.service._search_fn = _slow(0.3)
        payload = {
            "op": "schedule",
            "net": net_to_dict(paper_nets.figure_6()),
            "sources": ["a"],
        }
        before = LIVE_SEARCH_COUNTERS.nodes_expanded
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            await asyncio.sleep(0.1)  # request admitted, search in flight
            writer.close()  # ...and the client vanishes
            response = await _request(server.port, payload)
        finally:
            await server.shutdown()
        delta = LIVE_SEARCH_COUNTERS.nodes_expanded - before
        return response, delta

    response, delta = asyncio.run(scenario())
    assert response["ok"] and response["results"][0]["success"]
    assert delta == serial.counters.nodes_expanded  # still exactly one search


def test_timeout_answers_error_and_search_completes_for_others():
    async def scenario():
        server = await start_server(max_workers=1)
        server.service._search_fn = _slow(0.4)
        payload = {
            "op": "schedule",
            "net": net_to_dict(paper_nets.figure_5()),
            "sources": ["a"],
        }
        try:
            timed_out, fine = await asyncio.gather(
                _request(server.port, {**payload, "timeout": 0.05}),
                _request(server.port, payload),
            )
        finally:
            await server.shutdown()
        return timed_out, fine, server.service.snapshot()

    timed_out, fine, stats = asyncio.run(scenario())
    assert not timed_out["ok"] and timed_out["error"]["type"] == "timeout"
    assert fine["ok"] and fine["results"][0]["success"]
    assert stats["timeouts"] == 1
    assert stats["live_searches"] == 1  # the timed-out waiter did not re-search


# ---------------------------------------------------------------------------
# shutdown
# ---------------------------------------------------------------------------


def test_shutdown_drains_in_flight_requests():
    async def scenario():
        server = await start_server(max_workers=1, drain_deadline=5.0)
        server.service._search_fn = _slow(0.3)
        payload = {
            "op": "schedule",
            "net": net_to_dict(paper_nets.figure_5()),
            "sources": ["a"],
        }
        request = asyncio.create_task(_request(server.port, payload))
        await asyncio.sleep(0.1)  # admitted before the drain starts
        clean = await server.shutdown()
        response = await request
        return clean, response

    clean, response = asyncio.run(scenario())
    assert clean is True
    assert response["ok"] and response["results"][0]["success"]


def test_shutdown_op_over_the_wire():
    async def scenario():
        server = await start_server(max_workers=1)
        response = await _request(server.port, {"op": "shutdown"})
        clean = await server.serve_until_shutdown()
        return response, clean

    response, clean = asyncio.run(scenario())
    assert response["ok"] and response["shutting_down"]
    assert clean is True
