"""Golden-schedule regression harness.

Re-derives the schedule for every (net, source) pair registered in
``tests/golden_nets.py`` and diffs it against the committed fixture: the
shape summary (node count, await count, channel bounds) for readable
failures first, then the full canonical schedule and its fingerprint for
byte-level pinning.  Failure cases (figure_4b) are pinned too: they must
keep failing.

If a scheduler change intentionally alters schedules, regenerate with
``PYTHONPATH=src python tests/golden_nets.py`` and review the diff.
"""

from __future__ import annotations

import json
import os

import pytest

from golden_nets import GOLDEN_CASES, derive_case, fixture_path, render_case

ALL_CASES = [
    (net_name, source)
    for net_name, (_builder, sources) in sorted(GOLDEN_CASES.items())
    for source in sources
]


@pytest.mark.parametrize("net_name,source", ALL_CASES)
def test_schedule_matches_golden_fixture(net_name, source):
    path = fixture_path(net_name, source)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "`PYTHONPATH=src python tests/golden_nets.py`"
    )
    golden = json.loads(path.read_text())
    derived = derive_case(net_name, source)

    assert derived["success"] == golden["success"]
    # the shape facts first: these diffs are human-readable
    assert derived["summary"]["nodes"] == golden["summary"]["nodes"]
    assert derived["summary"]["await_nodes"] == golden["summary"]["await_nodes"]
    assert derived["summary"]["channel_bounds"] == golden["summary"]["channel_bounds"]
    assert derived["summary"] == golden["summary"]
    # then the byte-level pin on the full canonical schedule
    if golden["success"]:
        assert derived["fingerprint"] == golden["fingerprint"]
        assert derived["schedule"] == golden["schedule"]
    else:
        assert derived["failure_reason"] == golden["failure_reason"]


def test_every_fixture_has_a_registered_case():
    """No orphaned fixture files: the registry and the directory agree."""
    expected = {fixture_path(net_name, source) for net_name, source in ALL_CASES}
    actual = set(fixture_path("", "").parent.glob("*.json"))
    assert actual == expected


@pytest.mark.parametrize("net_name,source", ALL_CASES)
def test_regenerating_fixture_is_a_byte_level_noop(net_name, source):
    """In-process regeneration must reproduce the committed bytes exactly.

    This is stricter than the field-wise diff above: it pins the fixture
    *encoding* (key order, indentation, trailing newline) as well as the
    content, so a fixture that went stale -- or a regeneration script whose
    serialization drifted -- fails CI instead of silently rewriting files
    on the next `python tests/golden_nets.py` run.
    """
    path = fixture_path(net_name, source)
    regenerated = render_case(derive_case(net_name, source))
    assert regenerated == path.read_text()


# ---------------------------------------------------------------------------
# CI smoke: the parallel path reproduces the golden fixtures bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="needs >=2 cores; covered by the 'worker-matrix' CI job, which runs "
    "this and the intra_workers matrix un-skipped on a multi-core runner",
)
@pytest.mark.parametrize("net_name", sorted(GOLDEN_CASES))
def test_workers_2_reproduces_golden_fixtures(net_name):
    """`find_all_schedules(workers=2)` derives the committed fixtures exactly.

    One own-pool parallel run per golden net (shared-memory plane when the
    platform provides it, pickled nets otherwise); every scheduled source
    must match its fixture byte for byte.  Skips cleanly on single-core
    runners, where a two-worker pool only measures oversubscription.
    """
    from repro.scheduling.ep import find_all_schedules
    from repro.scheduling.serialize import (
        schedule_fingerprint,
        schedule_summary,
        schedule_to_dict,
    )

    builder, sources = GOLDEN_CASES[net_name]
    net = builder()
    results = find_all_schedules(net, sources=sources, workers=2)
    for source in sources:
        golden = json.loads(fixture_path(net_name, source).read_text())
        result = results[source]
        assert result.success == golden["success"], source
        assert schedule_summary(result.schedule) == golden["summary"]
        if golden["success"]:
            assert schedule_to_dict(result.schedule) == golden["schedule"]
            assert schedule_fingerprint(result.schedule) == golden["fingerprint"]
        else:
            assert result.failure_reason == golden["failure_reason"]
