"""Tests of the experiment harnesses: the reproduced tables and figures have
the shape the paper reports."""

from __future__ import annotations

import pytest

from repro.apps.video import VideoAppConfig
from repro.experiments import (
    build_pfc_setup,
    format_figure20,
    format_table1,
    format_table2,
    run_figure20,
    run_irrelevance_study,
    run_schedule_stats,
    run_table1,
    run_table2,
)
from repro.experiments.figure20 import speedup_by_profile
from repro.experiments.irrelevance_study import format_irrelevance_study
from repro.experiments.table1 import ratios_by_profile


SMALL = VideoAppConfig(lines_per_frame=2, pixels_per_line=3)


@pytest.fixture(scope="module")
def setup():
    return build_pfc_setup(SMALL)


def test_pfc_setup_schedule_properties(setup):
    # Section 8.2: a single task is generated and every control channel has
    # unit size; the pixel channels hold at most one line.
    assert len(setup.schedule.await_nodes()) == 1
    assert setup.schedule.is_single_source()
    bounds = {}
    for place, bound in setup.schedule.channel_bounds().items():
        channel = setup.system.channel_of_place(place)
        if channel:
            bounds[channel] = bound
    assert bounds["Req"] == 1 and bounds["Ack"] == 1 and bounds["Coeff"] == 1
    assert bounds["Pixels1"] == SMALL.pixels_per_line
    assert setup.scheduling_seconds < 60.0  # "in less than a minute"


def test_figure20_shape(setup):
    points = run_figure20(setup=setup, frames=4, buffer_sizes=(1, 5, 20), profiles=("pfc", "pfc-O"))
    multi = [p for p in points if p.implementation == "multi-task" and p.profile == "pfc"]
    single = [p for p in points if p.implementation == "single-task" and p.profile == "pfc"]
    assert len(multi) == 3 and len(single) == 1
    # larger buffers never hurt the 4-task implementation
    cycles_by_buffer = {p.buffer_size: p.cycles for p in multi}
    assert cycles_by_buffer[20] <= cycles_by_buffer[1]
    # the single task beats every 4-task configuration
    assert all(single[0].cycles < p.cycles for p in multi)
    speedups = speedup_by_profile(points)
    assert 2.0 < speedups["pfc"] < 20.0
    text = format_figure20(points)
    assert "single task" in text and "speed-up" in text


def test_table1_shape(setup):
    rows = run_table1(
        setup=setup,
        frame_counts=(10, 50, 100),
        profiles=("pfc", "pfc-O", "pfc-O2"),
        max_simulated_frames=10,
    )
    ratios = ratios_by_profile(rows)
    # the paper reports ~3.9 unoptimised and ~5.1-5.2 with -O/-O2; we require
    # the same shape: single task wins by roughly 3-8x and the optimised
    # ratios are at least as large as the unoptimised one.
    for profile, values in ratios.items():
        for value in values:
            assert 2.5 < value < 9.0
    assert min(ratios["pfc-O"]) >= max(ratios["pfc"]) - 0.5
    # cycles scale linearly with the number of frames
    by_frames = {row.frames: row.multi_task_kcycles for row in rows if row.profile == "pfc"}
    assert by_frames[100] == pytest.approx(10 * by_frames[10], rel=0.2)
    text = format_table1(rows)
    assert "Table 1" in text and "ratio" in text


def test_table2_shape(setup):
    rows = run_table2(setup=setup)
    for row in rows:
        # the single task is several times smaller than the four tasks together
        assert row.ratio > 2.0
        assert set(row.per_process_bytes) == {"controller", "producer", "filter", "consumer", "total"}
        assert row.total_bytes == sum(
            size for name, size in row.per_process_bytes.items() if name != "total"
        )
    text = format_table2(rows)
    assert "Table 2" in text
    # the function-call variant shrinks the baseline (as the paper notes)
    called = run_table2(setup=setup, inline_communication=False)
    assert called[0].total_bytes < rows[0].total_bytes


def test_schedule_stats_experiment():
    stats = run_schedule_stats(SMALL)
    assert stats.success
    assert stats.tasks_generated == 1
    assert stats.await_nodes == 1
    assert stats.all_control_channels_unit_size
    assert stats.seconds < 60.0


def test_irrelevance_study_reproduces_figure7_argument():
    rows = run_irrelevance_study(ks=(3, 4), bounds=(2,), max_nodes=4000)
    irrelevance_rows = [row for row in rows if row.condition == "irrelevance"]
    bound_rows = [row for row in rows if row.condition.startswith("bound")]
    assert all(row.success for row in irrelevance_rows)
    assert all(not row.success for row in bound_rows)
    text = format_irrelevance_study(rows)
    assert "irrelevance" in text
