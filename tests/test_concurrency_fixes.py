"""Regression tests for the concurrency and durability fixes.

Three latent bugs surfaced by putting the scheduler behind a multi-threaded
daemon, each pinned here:

* ``BoundedLRU`` used an unlocked ``OrderedDict``: concurrent ``get``/``put``
  corrupted recency order and could double-fire ``on_evict`` (double-closing
  the owned resource).
* ``JsonDirStore._write`` renamed without fsync: ``os.replace`` could publish
  a name whose data never hit the disk, and the pid-only temp-file suffix
  collided between threads of one process.
* ``SqliteStore`` shared one connection across threads, interleaving
  statement/commit pairs into torn transactions.

The hammers use more threads than cores on purpose -- preemption anywhere
inside a critical section is what exposed the races.
"""

from __future__ import annotations

import os
import threading
from collections import Counter

import pytest

from repro.apps import paper_nets
from repro.cache.stores import JsonDirStore, SqliteStore, decode_wire
from repro.scheduling.ep import SearchCounters
from repro.scheduling.serialize import schedule_fingerprint
from repro.scheduling.warmstart import (
    LIVE_SEARCH_COUNTERS,
    ScheduleWarmStartCache,
    record_live_search,
)
from repro.util import BoundedLRU


def _run_threads(worker, count: int):
    """Start ``count`` threads on ``worker(index)``; re-raise any failure."""
    failures = []

    def body(index):
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            failures.append(error)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


# ---------------------------------------------------------------------------
# BoundedLRU
# ---------------------------------------------------------------------------


class _Resource:
    """A value that notices being released more (or less) than once."""

    def __init__(self):
        self.releases = 0


def test_lru_on_evict_fires_once_per_displaced_value():
    released = []
    lru: BoundedLRU = BoundedLRU(2, on_evict=lambda k, v: released.append(k))
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)  # overwrite: old value displaced
    lru.put("c", 3)  # capacity: "b" displaced ("a" is fresher)
    assert released == ["a", "b"]
    assert lru.get("a") == 10 and lru.get("c") == 3 and "b" not in lru
    lru.clear()
    assert released == ["a", "b", "a", "c"]
    assert len(lru) == 0


def test_lru_hammer_releases_each_value_exactly_once():
    """8 threads × 400 puts against a capacity-8 LRU: no lost or double evict."""
    lock = threading.Lock()
    created = []

    def on_evict(key, value):
        value.releases += 1

    lru: BoundedLRU = BoundedLRU(8, on_evict=on_evict)

    def worker(index):
        for i in range(400):
            value = _Resource()
            with lock:
                created.append(value)
            lru.put((index, i % 16), value)
            lru.get((index, (i + 7) % 16))
            len(lru)
            list(lru)

    _run_threads(worker, 8)
    lru.clear()
    # every value ever created was released exactly once -- by displacement,
    # overwrite, or the final clear
    counts = Counter(value.releases for value in created)
    assert counts == {1: len(created)}, counts


def test_lru_hammer_shared_keys_keeps_store_consistent():
    """Threads fighting over the same keys never corrupt the recency dict."""
    lru: BoundedLRU = BoundedLRU(4)

    def worker(index):
        for i in range(600):
            key = i % 6
            lru.put(key, (index, i))
            got = lru.get(key)
            assert got is None or isinstance(got, tuple)

    _run_threads(worker, 8)
    assert len(lru) <= 4
    for key in lru:
        assert lru.get(key) is not None


def test_lru_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        BoundedLRU(0)


# ---------------------------------------------------------------------------
# ScheduleWarmStartCache under threads
# ---------------------------------------------------------------------------


def test_warmstart_cache_hammer_single_fingerprint():
    """Many threads, one logical net: everyone gets the same schedule.

    Each thread carries its *own* net object (the documented contract --
    ``PetriNet`` lazy caches are per-object), sharing only the warm-start
    cache.  The L1 lock keeps the stats and the LRU coherent.
    """
    cache = ScheduleWarmStartCache(capacity=16, store=False)
    reference = cache.find_schedule(
        paper_nets.figure_5(), "a", raise_on_failure=True
    )
    expected = schedule_fingerprint(reference.schedule)
    fingerprints = []
    lock = threading.Lock()

    def worker(index):
        net = paper_nets.figure_5()
        for _ in range(25):
            result = cache.find_schedule(net, "a", raise_on_failure=True)
            with lock:
                fingerprints.append(schedule_fingerprint(result.schedule))

    _run_threads(worker, 8)
    assert set(fingerprints) == {expected}
    stats = cache.stats.as_dict()
    # one live search (the reference); everything after replays from L1
    assert stats["misses"] == 1
    assert stats["hits"] == 8 * 25


def test_record_live_search_merge_is_atomic():
    before = LIVE_SEARCH_COUNTERS.nodes_expanded

    def worker(index):
        for _ in range(500):
            record_live_search(SearchCounters(nodes_expanded=1))

    _run_threads(worker, 8)
    assert LIVE_SEARCH_COUNTERS.nodes_expanded - before == 8 * 500


# ---------------------------------------------------------------------------
# SqliteStore: connection per thread
# ---------------------------------------------------------------------------


def test_sqlite_store_connection_per_thread(tmp_path):
    store = SqliteStore(tmp_path)
    connections = {}
    lock = threading.Lock()

    def worker(index):
        conn = store._connection()
        with lock:
            connections[index] = id(conn)
        assert store._connection() is conn  # stable within the thread

    _run_threads(worker, 4)
    store.close()
    assert len(set(connections.values())) == 4


def test_sqlite_store_hammer_two_threads_zero_errors(tmp_path):
    """The ISSUE's scenario: one process, threads sharing one store."""
    store = SqliteStore(tmp_path)

    def worker(index):
        for i in range(120):
            key = f"k{index}-{i % 10}"
            store.put("schedule", key, {"thread": index, "i": i})
            got = store.get("schedule", key)
            # a concurrent overwrite may interleave, but whatever is read
            # back must be a pristine payload, never a torn one
            assert got is None or got["thread"] == index
            if i % 17 == 0:
                store.delete("schedule", key)

    _run_threads(worker, 4)
    assert store.stats.errors == 0
    assert store.quarantined_count() == 0
    # survivors are readable and intact
    for entry in store.entries():
        assert store.get(entry.kind, entry.key) is not None
    store.close()


def test_sqlite_store_close_degrades_to_miss(tmp_path):
    store = SqliteStore(tmp_path)
    store.put("schedule", "k", {"v": 1})
    store.close()
    # the no-public-method-raises contract survives closing
    assert store.get("schedule", "k") is None
    store.put("schedule", "k2", {"v": 2})
    assert store.stats.errors >= 2


def test_sqlite_store_reopens_after_corrupt_rotation(tmp_path):
    (tmp_path / SqliteStore.FILENAME).write_text("this is not a database")
    store = SqliteStore(tmp_path)
    store.put("schedule", "k", {"v": 1})
    assert store.get("schedule", "k") == {"v": 1}
    assert (tmp_path / f"{SqliteStore.FILENAME}.corrupt-0").exists()
    store.close()


# ---------------------------------------------------------------------------
# JsonDirStore: durable atomic writes
# ---------------------------------------------------------------------------


def test_jsondir_write_fsyncs_file_before_replace_and_directory_after(
    tmp_path, monkeypatch
):
    store = JsonDirStore(tmp_path)
    events = []
    real_fsync, real_replace = os.fsync, os.replace

    def spy_fsync(fd):
        events.append(("fsync", os.fstat(fd).st_mode & 0o170000 == 0o040000))
        real_fsync(fd)

    def spy_replace(src, dst):
        events.append(("replace", None))
        real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(os, "replace", spy_replace)
    store.put("schedule", "k", {"v": 1})
    kinds = [kind for kind, _ in events]
    assert kinds == ["fsync", "replace", "fsync"]
    # first fsync targets the temp *file*, the last one the *directory*
    assert events[0][1] is False
    assert events[2][1] is True
    assert store.get("schedule", "k") == {"v": 1}


def test_jsondir_write_failure_leaves_no_temp_file(tmp_path, monkeypatch):
    store = JsonDirStore(tmp_path)

    def boom(src, dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "replace", boom)
    store.put("schedule", "k", {"v": 1})  # swallowed, counted
    assert store.stats.errors == 1
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
    assert leftovers == []
    assert store.get("schedule", "k") is None


def test_jsondir_concurrent_same_key_writes_never_collide(tmp_path):
    """Thread-id temp suffix: same-key writers never share a temp file."""
    store = JsonDirStore(tmp_path)

    def worker(index):
        for i in range(60):
            store.put("schedule", "contested", {"thread": index, "i": i})

    _run_threads(worker, 8)
    assert store.stats.errors == 0
    # the surviving entry is one writer's intact payload
    payload = store.get("schedule", "contested")
    assert payload is not None and set(payload) == {"thread", "i"}
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp-" in p.name]
    assert leftovers == []


def test_jsondir_blob_on_disk_is_checksummed(tmp_path):
    store = JsonDirStore(tmp_path)
    store.put("schedule", "k", {"v": 1})
    (path,) = (tmp_path / "json" / "schedule").glob("*.json")
    assert decode_wire(path.read_text()) == {"v": 1}
