"""Tests for the FlowC interpreter and the channel / binding primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flowc.interpreter import (
    Environment,
    Interpreter,
    InterpreterError,
    OperationCounter,
    WouldBlock,
)
from repro.flowc.parser import parse_expression, parse_statements
from repro.runtime.channels import (
    ChannelBuffer,
    CommunicationStats,
    EnvironmentSink,
    EnvironmentSource,
    PortBinding,
)


def run_code(source: str, binding=None, env=None) -> Environment:
    env = env or Environment("test")
    interpreter = Interpreter(env, binding)
    interpreter.run(parse_statements(source))
    return env


def test_arithmetic_and_assignment():
    env = run_code("int x, y; x = 7; y = x * 3 + 1; x += y % 5; x--;")
    assert env.get("y") == 22
    assert env.get("x") == 8


def test_integer_division_truncates_toward_zero():
    env = run_code("int a, b; a = 7 / 2; b = 0 - (7 / 2);")
    assert env.get("a") == 3
    env2 = run_code("int a; a = 9 % 4;")
    assert env2.get("a") == 1


def test_control_flow_constructs():
    env = run_code(
        """
        int i, total, k;
        total = 0;
        for (i = 0; i < 5; i++) total = total + i;
        k = 0;
        while (k < 3) { k++; if (k == 2) continue; total = total + 100; }
        switch (k) { case 3: total = total + 1000; break; default: total = 0; }
        """
    )
    assert env.get("total") == 10 + 200 + 1000


def test_arrays_and_indexing():
    env = run_code("int buf[4], i; for (i = 0; i < 4; i++) buf[i] = i * i;")
    assert env.get("buf") == [0, 1, 4, 9]
    with pytest.raises(InterpreterError):
        run_code("int buf[2]; buf[5] = 1;")


def test_logical_operators_short_circuit():
    env = run_code("int a, b; a = (0 && (1 / 0)); b = (1 || (1 / 0));")
    assert env.get("a") == 0
    assert env.get("b") == 1


def test_division_by_zero_raises():
    with pytest.raises(InterpreterError):
        run_code("int x; x = 1 / 0;")


def test_unknown_function_raises_and_builtins_work():
    with pytest.raises(InterpreterError):
        run_code("int x; x = mystery(1);")
    env = run_code("int x; x = clip255(300) + abs(0 - 2);")
    assert env.get("x") == 257


def test_operation_counter_tracks_work():
    counter = OperationCounter()
    env = Environment("t")
    interpreter = Interpreter(env, counter=counter)
    interpreter.run(parse_statements("int i, s; s = 0; for (i = 0; i < 10; i++) s = s + i;"))
    assert counter.arithmetic >= 10
    assert counter.branches >= 10
    assert counter.assignments >= 12
    snapshot = counter.copy()
    snapshot.merge(counter)
    assert snapshot.total() == 2 * counter.total()


def test_read_write_through_binding():
    binding = PortBinding()
    channel = ChannelBuffer("ch", capacity=4)
    binding.bind_writer("out", channel)
    binding.bind_reader("inp", channel)
    env = Environment("p")
    interpreter = Interpreter(env, binding)
    interpreter.run(parse_statements("int x; x = 5; WRITE_DATA(out, x, 1); WRITE_DATA(out, x + 1, 1);"))
    assert len(channel) == 2
    interpreter.run(parse_statements("int y; READ_DATA(inp, &y, 1);"))
    assert env.get("y") == 5
    assert binding.stats.intertask_writes == 2
    assert binding.stats.intertask_reads == 1


def test_multirate_read_into_array():
    binding = PortBinding()
    channel = ChannelBuffer("ch")
    channel.write([1, 2, 3, 4])
    binding.bind_reader("inp", channel)
    env = Environment("p")
    env.declare_array("buf", 4)
    Interpreter(env, binding).run(parse_statements("READ_DATA(inp, buf, 4);"))
    assert env.get("buf") == [1, 2, 3, 4]


def test_select_resolution_priority():
    binding = PortBinding()
    a = ChannelBuffer("a")
    b = ChannelBuffer("b")
    binding.bind_reader("a", a)
    binding.bind_reader("b", b)
    b.write([42])
    env = Environment("p")
    interpreter = Interpreter(env, binding)
    value = interpreter.evaluate(parse_expression("SELECT(a, 1, b, 1)"))
    assert value == 1  # only b is ready
    a.write([7])
    value = interpreter.evaluate(parse_expression("SELECT(a, 1, b, 1)"))
    assert value == 0  # a has higher (textual) priority


def test_select_blocks_when_nothing_ready():
    binding = PortBinding()
    binding.bind_reader("a", ChannelBuffer("a"))
    env = Environment("p")
    with pytest.raises(WouldBlock):
        Interpreter(env, binding).evaluate(parse_expression("SELECT(a, 1)"))


# ---------------------------------------------------------------------------
# channels
# ---------------------------------------------------------------------------


def test_channel_buffer_capacity_and_stats():
    channel = ChannelBuffer("c", capacity=3)
    channel.write([1, 2])
    assert channel.occupancy == 2 and channel.space() == 1
    with pytest.raises(WouldBlock):
        channel.write([3, 4])
    channel.write([3])
    assert channel.max_occupancy == 3
    assert channel.read(2) == [1, 2]
    with pytest.raises(WouldBlock):
        channel.read(2)
    assert channel.total_written == 3 and channel.total_read == 2


def test_channel_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ChannelBuffer("c", capacity=0)


def test_environment_source_and_sink():
    source = EnvironmentSource("init", [1, 2])
    assert source.available() == 2
    assert source.read(1) == [1]
    source.offer(3)
    assert source.read(2) == [2, 3]
    with pytest.raises(WouldBlock):
        source.read(1)
    sink = EnvironmentSink("out")
    sink.write([9, 9])
    assert len(sink) == 2


def test_binding_environment_and_intratask_classification():
    stats = CommunicationStats()
    binding = PortBinding(stats=stats)
    channel = ChannelBuffer("c")
    binding.bind_writer("w", channel, intratask=True)
    binding.bind_reader("r", channel, intratask=True)
    binding.bind_source("in", EnvironmentSource("in", [5]))
    binding.bind_sink("out", EnvironmentSink("out"))
    binding.write("w", [1], 1)
    binding.read("r", 1)
    binding.read("in", 1)
    binding.write("out", [2], 1)
    assert stats.intratask_reads == 1 and stats.intratask_writes == 1
    assert stats.environment_reads == 1 and stats.environment_writes == 1
    assert stats.intertask_reads == 0
    merged = CommunicationStats()
    merged.merge(stats)
    assert merged.intratask_items == stats.intratask_items


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20))
def test_channel_fifo_order_property(values):
    channel = ChannelBuffer("c")
    channel.write(values)
    assert channel.read(len(values)) == values
