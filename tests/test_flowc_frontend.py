"""Tests for the FlowC front-end: lexer, parser, leaders, compiler, linker."""

from __future__ import annotations

import pytest

from repro.apps.divisors import DIVISORS_SOURCE
from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Declaration,
    Identifier,
    If,
    IntLiteral,
    ReadData,
    SelectExpr,
    Switch,
    While,
    WriteData,
    ports_referenced,
)
from repro.flowc.compiler import (
    CompilationError,
    SelectCondition,
    compile_process,
    constant_trip_count,
    evaluate_constant,
)
from repro.flowc.leaders import (
    compute_leaders,
    contains_port_statement,
    is_port_statement,
    leader_statements,
    split_into_portions,
)
from repro.flowc.lexer import FlowCLexError, tokenize
from repro.flowc.linker import LinkError, link
from repro.flowc.netlist import Network, NetworkError
from repro.flowc.parser import (
    FlowCParseError,
    parse_expression,
    parse_process,
    parse_program,
    parse_statements,
)
from repro.petrinet.analysis import is_unique_choice_net


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


def test_tokenize_basic_stream():
    tokens = tokenize("int x = 10; // comment\nx += 2;")
    kinds = [t.kind for t in tokens]
    values = [t.value for t in tokens]
    assert "keyword" in kinds and "ident" in kinds and "int" in kinds
    assert "+=" in values
    assert tokens[-1].kind == "eof"


def test_tokenize_floats_strings_chars_comments():
    tokens = tokenize('float f = 1.5e2; char c = \'A\'; /* block\ncomment */ "text"')
    values = {t.value for t in tokens}
    assert "1.5e2" in values
    assert str(ord("A")) in values
    assert "text" in values


def test_tokenize_errors():
    with pytest.raises(FlowCLexError):
        tokenize("int x = @;")
    with pytest.raises(FlowCLexError):
        tokenize('"unterminated')
    with pytest.raises(FlowCLexError):
        tokenize("/* never closed")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def test_parse_divisors_process():
    process = parse_process(DIVISORS_SOURCE)
    assert process.name == "divisors"
    assert [p.name for p in process.ports] == ["in", "max", "all"]
    assert process.port("in").is_input and process.port("max").is_output
    assert isinstance(process.body[0], Declaration)
    assert isinstance(process.body[1], While)
    assert ports_referenced(process.body) == ["in", "max", "all", "all"]


def test_parse_expression_precedence():
    expr = parse_expression("1 + 2 * 3 == 7")
    assert isinstance(expr, BinaryOp) and expr.op == "=="
    left = expr.left
    assert isinstance(left, BinaryOp) and left.op == "+"
    assert isinstance(left.right, BinaryOp) and left.right.op == "*"


def test_parse_statements_and_assignment():
    statements = parse_statements("x = y % 2; if (x) y++; else y--;")
    assert len(statements) == 2
    assert isinstance(statements[1], If)


def test_parse_select_switch():
    source = """
    PROCESS p (In DPORT a, In DPORT b, Out DPORT o) {
        int v;
        while (1) {
            switch (SELECT(a, 1, b, 2)) {
                case 0: READ_DATA(a, &v, 1); break;
                case 1: READ_DATA(b, &v, 2); break;
            }
            WRITE_DATA(o, v, 1);
        }
    }
    """
    process = parse_process(source)
    loop = process.body[1]
    assert isinstance(loop, While)
    switch = loop.body[0]
    assert isinstance(switch, Switch) and switch.is_select
    assert isinstance(switch.subject, SelectExpr)
    assert [port for port, _ in switch.subject.entries] == ["a", "b"]


def test_parse_errors():
    with pytest.raises(FlowCParseError):
        parse_process("PROCESS broken (In DPORT x) { while ( }")
    with pytest.raises(FlowCParseError):
        parse_process("int not_a_process;")
    with pytest.raises(FlowCParseError):
        parse_process("PROCESS a () { } PROCESS b () { }")  # exactly one expected


def test_parse_program_multiple_processes():
    processes = parse_program(
        "PROCESS a (Out DPORT o) { WRITE_DATA(o, 1, 1); } PROCESS b (In DPORT i) { int x; READ_DATA(i, &x, 1); }"
    )
    assert [p.name for p in processes] == ["a", "b"]


# ---------------------------------------------------------------------------
# leaders
# ---------------------------------------------------------------------------


def test_leader_rules_on_figure_1():
    process = parse_process(DIVISORS_SOURCE)
    loop = process.body[1]
    assert isinstance(loop, While)
    body = loop.body
    leaders = compute_leaders(body)
    read_stmt = body[0]
    write_max = body[3]
    write_all_first = body[4]
    inner_while = body[5]
    assert isinstance(read_stmt, ReadData)
    assert isinstance(write_max, WriteData)
    assert isinstance(write_all_first, WriteData)
    assert isinstance(inner_while, While)
    # line 4: READ_DATA is a leader (rules 2 and 4)
    assert id(read_stmt) in leaders
    # line 9: the statement after WRITE_DATA(max, ...) is a leader (rule 3)
    assert id(write_all_first) in leaders
    # line 11: the first statement of the port-containing while is a leader (rule 4)
    assert id(inner_while.body[0]) in leaders
    # line 13: the WRITE inside the if is a leader (rule 4 applied to the if)
    inner_if = inner_while.body[1]
    assert isinstance(inner_if, If)
    assert id(inner_if.then_body[0]) in leaders
    # WRITE_DATA(max, ...) itself is not a leader
    assert id(write_max) not in leaders


def test_contains_and_is_port_statement():
    process = parse_process(DIVISORS_SOURCE)
    loop = process.body[1]
    assert contains_port_statement(loop)
    assert not contains_port_statement(process.body[0])
    assert is_port_statement(loop.body[0])
    assert not is_port_statement(loop.body[1])


def test_split_into_portions():
    statements = parse_statements(
        "READ_DATA(p, &x, 1); x = x + 1; WRITE_DATA(q, x, 1); WRITE_DATA(q, x, 1); y = 0;"
    )
    portions = split_into_portions(statements)
    assert len(portions) == 3
    assert isinstance(portions[0][0], ReadData)
    assert isinstance(portions[1][0], WriteData)


def test_leader_statements_in_order():
    process = parse_process(DIVISORS_SOURCE)
    loop = process.body[1]
    leaders = leader_statements(loop.body)
    assert len(leaders) >= 4


# ---------------------------------------------------------------------------
# compiler
# ---------------------------------------------------------------------------


def test_compile_divisors_matches_figure_3():
    process = parse_process(DIVISORS_SOURCE)
    compiled = compile_process(process)
    net = compiled.net
    # exactly one control place marked initially (the program counter)
    assert sum(net.initial_tokens.values()) == 1
    # three dangling port places
    assert sorted(compiled.port_places) == ["all", "in", "max"]
    # the first transition reads `in` and writes `max` in one segment
    read_transitions = [t for t in net.transitions if net.weight_pt(compiled.port_places["in"], t)]
    assert len(read_transitions) == 1
    t0 = read_transitions[0]
    assert net.weight_tp(t0, compiled.port_places["max"]) == 1
    # two transitions write to `all` (line 9 and line 13)
    all_writers = [t for t in net.transitions if net.weight_tp(t, compiled.port_places["all"])]
    assert len(all_writers) == 2
    # choice places carry the loop / if conditions
    conditions = [str(p.condition) for p in net.places.values() if p.condition is not None]
    assert any("i > 1" in c or "(i > 1)" in c for c in conditions)
    assert any("% i" in c for c in conditions)
    # the per-process net is unique choice (Section 3.1)
    assert is_unique_choice_net(net)
    # declarations were hoisted out of the cyclic net
    assert compiled.declarations and isinstance(compiled.declarations[0], Declaration)


def test_compile_initialisation_statements_are_hoisted():
    source = """
    PROCESS p (In DPORT i, Out DPORT o) {
        int x, acc;
        acc = 0;
        while (1) {
            READ_DATA(i, &x, 1);
            acc = acc + x;
            WRITE_DATA(o, acc, 1);
        }
    }
    """
    compiled = compile_process(parse_process(source))
    assert len(compiled.declarations) == 2  # the declaration and `acc = 0;`
    # the cyclic net returns to its initial marking after one iteration once a
    # token is supplied on the input port (no one-shot initialisation remains)
    net = compiled.net
    m = net.initial_marking.add({compiled.port_places["i"]: 1})
    fired = []
    for _ in range(10):
        enabled = [t for t in net.enabled_transitions(m) if net.pre[t]]
        if not enabled:
            break
        m = net.fire(enabled[0], m)
        fired.append(enabled[0])
    assert fired
    assert m.restrict([compiled.initial_place]) == {compiled.initial_place: 1}


def test_compile_multirate_weights():
    source = """
    PROCESS p (In DPORT i, Out DPORT o) {
        int line[8];
        while (1) {
            READ_DATA(i, line, 8);
            WRITE_DATA(o, line, 8);
        }
    }
    """
    compiled = compile_process(parse_process(source))
    net = compiled.net
    transition = [t for t in net.transitions if net.pre[t].get(compiled.port_places["i"])][0]
    assert net.weight_pt(compiled.port_places["i"], transition) == 8
    assert net.weight_tp(transition, compiled.port_places["o"]) == 8


def test_compile_rejects_non_constant_rate():
    source = """
    PROCESS p (In DPORT i) {
        int n, buf[4];
        while (1) {
            READ_DATA(i, &n, 1);
            READ_DATA(i, buf, n);
        }
    }
    """
    with pytest.raises(CompilationError):
        compile_process(parse_process(source))


def test_compile_rejects_undeclared_port():
    source = "PROCESS p (In DPORT i) { int x; while (1) { READ_DATA(other, &x, 1); } }"
    with pytest.raises(CompilationError):
        compile_process(parse_process(source))


def test_constant_trip_count_and_unrolling():
    statements = parse_statements("for (i = 0; i < 5; i++) WRITE_DATA(o, i, 1);")
    assert constant_trip_count(statements[0]) == 5
    statements = parse_statements("for (i = 10; i > 0; i -= 2) WRITE_DATA(o, i, 1);")
    assert constant_trip_count(statements[0]) == 5
    statements = parse_statements("for (i = 0; i < n; i++) WRITE_DATA(o, i, 1);")
    assert constant_trip_count(statements[0]) is None

    source = """
    PROCESS p (Out DPORT o) {
        int i;
        while (1) {
            for (i = 0; i < 3; i++)
                WRITE_DATA(o, i, 1);
        }
    }
    """
    unrolled = compile_process(parse_process(source))
    rolled = compile_process(parse_process(source), max_unroll=0)
    writers_unrolled = [
        t for t in unrolled.net.transitions if unrolled.net.weight_tp(t, unrolled.port_places["o"])
    ]
    writers_rolled = [
        t for t in rolled.net.transitions if rolled.net.weight_tp(t, rolled.port_places["o"])
    ]
    assert len(writers_unrolled) == 3
    assert len(writers_rolled) == 1
    # without unrolling the loop becomes a data-dependent choice place
    assert any(p.condition is not None for p in rolled.net.places.values())


def test_compile_select_switch_breaks_unique_choice():
    source = """
    PROCESS p (In DPORT a, In DPORT b, Out DPORT o) {
        int v;
        while (1) {
            switch (SELECT(a, 1, b, 1)) {
                case 0: READ_DATA(a, &v, 1); break;
                case 1: READ_DATA(b, &v, 1); break;
            }
            WRITE_DATA(o, v, 1);
        }
    }
    """
    compiled = compile_process(parse_process(source))
    net = compiled.net
    select_places = [p for p in net.places.values() if isinstance(p.condition, SelectCondition)]
    assert len(select_places) == 1
    # the SELECT branches have different presets, so the net is not unique choice
    assert not is_unique_choice_net(net)


def test_evaluate_constant():
    assert evaluate_constant(parse_expression("3 * 4 + 1")) == 13
    assert evaluate_constant(parse_expression("-(2)")) == -2
    assert evaluate_constant(parse_expression("x + 1")) is None


# ---------------------------------------------------------------------------
# netlist and linker
# ---------------------------------------------------------------------------


def _two_process_network() -> Network:
    source = """
    PROCESS prod (In DPORT trig, Out DPORT out) {
        int t;
        while (1) {
            READ_DATA(trig, &t, 1);
            WRITE_DATA(out, t, 1);
        }
    }
    PROCESS cons (In DPORT inp, Out DPORT res) {
        int v;
        while (1) {
            READ_DATA(inp, &v, 1);
            WRITE_DATA(res, v + 1, 1);
        }
    }
    """
    network = Network(name="pair")
    network.add_processes_from_source(source)
    network.connect("prod", "out", "cons", "inp", name="link", bound=4)
    network.declare_input("prod", "trig", controllable=False)
    network.declare_output("cons", "res")
    return network


def test_network_validation_and_errors():
    network = _two_process_network()
    network.validate()
    with pytest.raises(NetworkError):
        network.connect("prod", "out", "cons", "inp")  # already connected
    with pytest.raises(NetworkError):
        network.connect("prod", "trig", "cons", "inp")  # trig is not an output
    incomplete = Network()
    incomplete.add_processes_from_source(
        "PROCESS lonely (In DPORT x) { int v; while (1) { READ_DATA(x, &v, 1); } }"
    )
    with pytest.raises(NetworkError):
        incomplete.validate()


def test_link_merges_channel_places():
    network = _two_process_network()
    system = link(network)
    net = system.net
    channel_place = system.channel_places["link"]
    assert net.places[channel_place].is_port
    assert net.places[channel_place].bound == 4
    # the producer writes and the consumer reads the same merged place
    writers = net.predecessors_of_place(channel_place)
    readers = net.successors_of_place(channel_place)
    assert any(t.startswith("prod.") for t in writers)
    assert any(t.startswith("cons.") for t in readers)
    # environment ports got source / sink transitions
    assert "src.prod.trig" in net.transitions
    assert "sink.cons.res" in net.transitions
    assert net.transitions["src.prod.trig"].is_uncontrollable_source
    assert system.uncontrollable_source_transitions == ["src.prod.trig"]
    assert system.channel_of_place(channel_place) == "link"


def test_link_describe_and_port_mapping():
    network = _two_process_network()
    description = network.describe()
    assert "channel" in description and "uncontrollable" in description
    system = link(network)
    assert system.port_place_of[("prod", "out")] == system.port_place_of[("cons", "inp")]
