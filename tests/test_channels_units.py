"""Direct unit tests of :mod:`repro.runtime.channels` boundary behaviour.

The channel primitives were previously exercised only incidentally through
the end-to-end simulator tests; these pin the blocking semantics of
Section 3 at the edges -- unit capacity, empty reads, exhausted sources --
plus the trace-recording hooks the corpus harness relies on.
"""

from __future__ import annotations

import pytest

from repro.flowc.interpreter import WouldBlock
from repro.runtime.channels import (
    ChannelBuffer,
    EnvironmentSink,
    EnvironmentSource,
    PortBinding,
    TraceRecorder,
    TracingSink,
)


class TestChannelBufferBoundaries:
    def test_unit_capacity_full_and_empty(self):
        channel = ChannelBuffer("c", capacity=1)
        assert channel.can_write(1) and not channel.can_read(1)
        channel.write([7])
        assert not channel.can_write(1) and channel.can_read(1)
        assert channel.space() == 0
        with pytest.raises(WouldBlock):
            channel.write([8])
        assert channel.read(1) == [7]
        assert channel.can_write(1) and not channel.can_read(1)
        with pytest.raises(WouldBlock):
            channel.read(1)

    def test_burst_larger_than_unit_capacity_never_fits(self):
        channel = ChannelBuffer("c", capacity=1)
        assert not channel.can_write(2)
        with pytest.raises(WouldBlock):
            channel.write([1, 2])
        # the failed write must not have committed anything
        assert channel.occupancy == 0

    def test_zero_item_operations_on_empty_channel(self):
        channel = ChannelBuffer("c", capacity=1)
        assert channel.can_read(0)
        assert channel.read(0) == []
        channel.write([])
        assert channel.occupancy == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ChannelBuffer("c", capacity=0)
        with pytest.raises(ValueError):
            ChannelBuffer("c", capacity=-3)

    def test_max_occupancy_tracks_high_water_mark(self):
        channel = ChannelBuffer("c", capacity=None)
        channel.write([1, 2, 3])
        channel.read(2)
        channel.write([4])
        assert channel.occupancy == 2
        assert channel.max_occupancy == 3
        assert channel.total_written == 4
        assert channel.total_read == 2

    def test_unbounded_channel_reports_no_space_limit(self):
        channel = ChannelBuffer("c")
        assert channel.space() is None
        assert channel.can_write(10**6)


class TestEnvironmentEndpoints:
    def test_source_blocks_when_exhausted(self):
        source = EnvironmentSource("ev", [1, 2])
        assert source.read(2) == [1, 2]
        assert source.total_consumed == 2
        with pytest.raises(WouldBlock):
            source.read(1)
        source.offer(3)
        assert source.read(1) == [3]

    def test_sink_accumulates_across_writes(self):
        sink = EnvironmentSink("out")
        sink.write([1])
        sink.write([2, 3])
        assert sink.values == [1, 2, 3]
        assert len(sink) == 3


class TestTracing:
    def test_recorder_orders_events_globally_and_per_channel(self):
        recorder = TraceRecorder()
        a = TracingSink("a", recorder)
        b = TracingSink("b", recorder)
        a.write([1])
        b.write([2, 3])
        a.write([4])
        assert [event.sequence for event in recorder.events] == [0, 1, 2]
        assert recorder.by_channel() == {"a": [(1,), (4,)], "b": [(2, 3)]}
        # the sink contract is unchanged: values still accumulate
        assert a.values == [1, 4]

    def test_tracing_sink_is_a_drop_in_sink(self):
        recorder = TraceRecorder()
        binding = PortBinding()
        binding.bind_sink("out", TracingSink("out", recorder))
        binding.write("out", [9], 1)
        assert recorder.by_channel() == {"out": [(9,)]}
        assert binding.stats.environment_writes == 1


class TestPortBindingBoundaries:
    def test_unbound_ports_raise(self):
        binding = PortBinding()
        with pytest.raises(KeyError):
            binding.read("nope", 1)
        with pytest.raises(KeyError):
            binding.write("nope", [1], 1)
        assert not binding.can_read("nope", 1)
        assert not binding.can_write("nope", 1)

    def test_select_blocks_when_no_entry_ready(self):
        binding = PortBinding()
        empty = ChannelBuffer("c", capacity=1)
        binding.bind_reader("in", empty)
        with pytest.raises(WouldBlock):
            binding.select([("in", 1)])
        empty.write([5])
        assert binding.select([("in", 1)]) == 0

    def test_select_prefers_first_ready_entry(self):
        binding = PortBinding()
        full = ChannelBuffer("full", capacity=1)
        full.write([1])
        binding.bind_writer("w", full)
        ready = ChannelBuffer("r", capacity=1)
        ready.write([2])
        binding.bind_reader("r", ready)
        # writing to the full channel cannot proceed; reading can
        assert binding.select([("w", 1), ("r", 1)]) == 1
