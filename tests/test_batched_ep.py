"""Differential harness pinning the batched and kernel EP backends to scalar.

The batched backend rewrites the innermost loop of the scheduler -- frontier
expansion, termination masks, marking interning -- and the kernel backend
fuses that loop further (one call over contiguous buffers, incremental
irrelevance); both sit behind one equivalence contract: for any net and any
supported options, every backend must produce the same canonical schedule
(byte-identical under :func:`schedule_to_json`), the same failure reason,
the same tree, and the same :class:`SearchCounters` modulo the counters
listed in ``SearchCounters.BACKEND_ONLY``.

This module enforces the contract three ways:

* a seeded fuzz sweep over 200+ generated nets (marked graphs, choice
  diamonds, multi-source rings) running the three backends side by side;
* edge cases the fuzzers are unlikely to hit: empty frontiers, one-place
  nets, bound-saturated frontiers, all-irrelevant frontiers, token counts
  at the int64 guard;
* unit tests of the frontier primitives and the backend resolution rules.

Kernel-specific behaviour (tier resolution, the fallback warning, the
incremental irrelevance checker itself) lives in ``tests/test_kernel.py``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.apps.workloads import (
    random_choice_net,
    random_marked_graph,
    random_multi_source_net,
)
from repro.petrinet.batched import (
    FRONTIER_TOKEN_GUARD,
    FrontierOverflowError,
    expand_children,
    irrelevance_frontier_mask,
)
from repro.petrinet.net import PetriNet, SourceKind
from repro.scheduling.ep import (
    SchedulerOptions,
    SearchCounters,
    find_all_schedules,
    find_schedule,
    resolve_backend_for,
)
from repro.scheduling.serialize import schedule_fingerprint, schedule_to_dict
from repro.scheduling.termination import (
    CompositeCondition,
    NodeBudget,
    PlaceBoundCondition,
    TerminationCondition,
    split_frontier_conditions,
)


def comparable_counters(counters: SearchCounters) -> dict:
    """Counter dict with the backend-only counters removed."""
    data = counters.as_dict()
    for key in SearchCounters.BACKEND_ONLY:
        data.pop(key)
    return data


def assert_results_equivalent(scalar, batched):
    """The full equivalence contract between two SchedulerResults."""
    assert scalar.success == batched.success
    assert scalar.failure_reason == batched.failure_reason
    assert scalar.tree_nodes == batched.tree_nodes
    assert comparable_counters(scalar.counters) == comparable_counters(batched.counters)
    if scalar.success:
        assert schedule_to_dict(scalar.schedule) == schedule_to_dict(batched.schedule)
        assert schedule_fingerprint(scalar.schedule) == schedule_fingerprint(
            batched.schedule
        )


ALL_BACKENDS = ("scalar", "batched", "kernel")


def run_all_backends(net, source, *, max_nodes=600, termination=None):
    """One search per backend; returns (scalar, batched, kernel) results.

    The scalar/kernel pair is asserted equivalent here, so the many edge
    tests that only unpack ``scalar, batched`` still exercise the full
    three-way contract.
    """
    results = {}
    for backend in ALL_BACKENDS:
        options = SchedulerOptions(
            max_nodes=max_nodes, backend=backend, termination=termination
        )
        results[backend] = find_schedule(net, source, options=options)
    assert_results_equivalent(results["scalar"], results["kernel"])
    return results["scalar"], results["batched"], results["kernel"]


# ---------------------------------------------------------------------------
# differential fuzz sweep (>= 200 generated nets)
# ---------------------------------------------------------------------------

FUZZ_CASES = (
    [("choice", seed) for seed in range(80)]
    + [("marked_graph", seed) for seed in range(80)]
    + [("multi_source", seed) for seed in range(40)]
)


def build_fuzz_net(kind: str, seed: int) -> PetriNet:
    rng = random.Random(seed)
    if kind == "choice":
        return random_choice_net(1 + seed % 4, rng=rng)
    if kind == "marked_graph":
        return random_marked_graph(2 + seed % 7, rng=rng)
    assert kind == "multi_source"
    return random_multi_source_net(1 + seed % 3, 3, rng=rng)


def test_fuzz_sweep_covers_at_least_200_nets():
    assert len(FUZZ_CASES) >= 200


@pytest.mark.parametrize("kind,seed", FUZZ_CASES)
def test_differential_fuzz_scalar_vs_batched(kind, seed):
    net = build_fuzz_net(kind, seed)
    for source in net.uncontrollable_sources():
        scalar, batched, kernel = run_all_backends(net, source)
        assert_results_equivalent(scalar, batched)


def test_fuzz_sweep_exercises_the_batched_and_kernel_paths():
    """The generated nets must actually run batched/kernel (no silent fallbacks)."""
    batched_runs = 0
    kernel_runs = 0
    successes = 0
    for kind, seed in FUZZ_CASES[::7]:
        net = build_fuzz_net(kind, seed)
        options = SchedulerOptions(max_nodes=600, backend="batched")
        assert resolve_backend_for(net, options) == "batched"
        kernel_options = SchedulerOptions(max_nodes=600, backend="kernel")
        assert resolve_backend_for(net, kernel_options) == "kernel"
        for source in net.uncontrollable_sources():
            result = find_schedule(net, source, options=options)
            if result.counters.batched_expansions:
                batched_runs += 1
            kernel_result = find_schedule(net, source, options=kernel_options)
            if kernel_result.counters.kernel_expansions:
                kernel_runs += 1
            assert kernel_result.counters.batched_expansions == 0
            successes += bool(result.success)
    assert batched_runs > 0
    assert kernel_runs > 0
    assert successes > 0


def test_differential_on_an_unschedulable_paper_net():
    """Failures must be byte-identical too (reason, tree size, counters)."""
    from repro.apps import paper_nets

    net = paper_nets.figure_4b()
    scalar, batched, kernel = run_all_backends(net, "a", max_nodes=5000)
    assert not scalar.success
    assert_results_equivalent(scalar, batched)
    assert batched.counters.batched_expansions > 0


def test_differential_find_all_schedules_merged_counters():
    """Multi-source nets: per-source results and merged counters agree."""
    for seed in (3, 11, 27):
        net = random_multi_source_net(3, 3, seed=seed)
        per_backend = {
            backend: find_all_schedules(
                net, options=SchedulerOptions(max_nodes=600), backend=backend
            )
            for backend in ALL_BACKENDS
        }
        scalar = per_backend["scalar"]
        for backend in ("batched", "kernel"):
            other = per_backend[backend]
            assert list(scalar) == list(other)
            for source in scalar:
                assert_results_equivalent(scalar[source], other[source])
        merged = {
            backend: SearchCounters.aggregate(r.counters for r in results.values())
            for backend, results in per_backend.items()
        }
        assert (
            comparable_counters(merged["scalar"])
            == comparable_counters(merged["batched"])
            == comparable_counters(merged["kernel"])
        )
        assert merged["batched"].batched_expansions > 0
        assert merged["kernel"].kernel_expansions > 0


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------


def _starved_net() -> PetriNet:
    """One source event is not enough to enable anything downstream."""
    net = PetriNet(name="starved")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_place("p")
    net.add_arc("src", "p")
    net.add_transition("t")
    net.add_arc("p", "t", 2)  # needs two tokens; one event provides one
    return net


def test_empty_frontier_backtracks_identically():
    """The child of the first source firing has an *empty* frontier.

    The search must backtrack out of it and recover by deferring to a second
    source event (two await nodes) -- on both backends, identically.
    """
    net = _starved_net()
    scalar, batched, kernel = run_all_backends(net, "src", max_nodes=50)
    assert scalar.success
    assert len(scalar.schedule.await_nodes()) == 2
    assert_results_equivalent(scalar, batched)
    assert batched.counters.batched_expansions > 0


def test_empty_frontier_with_banned_source_refire_fails_identically():
    """Bounding p to one token forbids the recovery: EP fails outright."""
    net = _starved_net()
    termination = CompositeCondition(
        conditions=[PlaceBoundCondition.uniform(net, 1), NodeBudget(max_nodes=50)]
    )
    scalar, batched, kernel = run_all_backends(net, "src", termination=termination)
    assert not scalar.success
    assert_results_equivalent(scalar, batched)


def test_single_place_single_transition_net():
    net = PetriNet(name="tiny")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_place("p")
    net.add_transition("t")
    net.add_arc("src", "p")
    net.add_arc("p", "t")
    scalar, batched, kernel = run_all_backends(net, "src")
    assert scalar.success
    assert_results_equivalent(scalar, batched)
    assert batched.counters.batched_expansions > 0


def test_every_child_violates_the_configured_bound():
    """A zero place bound prunes the entire frontier at every node."""
    net = random_choice_net(2, seed=5)
    termination = CompositeCondition(
        conditions=[PlaceBoundCondition.uniform(net, 0), NodeBudget(max_nodes=200)]
    )
    scalar, batched, kernel = run_all_backends(net, "src", termination=termination)
    assert not scalar.success
    assert_results_equivalent(scalar, batched)
    # the condition decomposes, so the batched path must really have run
    assert batched.counters.batched_expansions > 0


def test_all_irrelevant_frontier():
    """Every expansion grows only saturated places: the whole tree is pruned."""
    net = PetriNet(name="growing")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_place("p")
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("src", "p")
    net.add_arc("p", "t")
    net.add_arc("t", "p")  # keeps p marked: t's child covers its parent
    net.add_arc("t", "q")  # and grows q, whose degree is already saturated
    # no T-invariant fires src (tokens only accumulate), so the precheck
    # must be disabled for the search -- and its irrelevance pruning -- to run
    results = {}
    for backend in ("scalar", "batched"):
        results[backend] = find_schedule(
            net,
            "src",
            options=SchedulerOptions(
                max_nodes=100,
                backend=backend,
                invariant_precheck=False,
                use_invariant_heuristic=False,
            ),
        )
    scalar, batched = results["scalar"], results["batched"]
    assert not scalar.success
    assert scalar.counters.nodes_expanded > 0
    assert_results_equivalent(scalar, batched)
    assert batched.counters.batched_expansions > 0


def test_int64_guard_falls_back_to_exact_scalar_arithmetic():
    """Token counts near the int64 threshold must not reach the matrices."""
    huge = FRONTIER_TOKEN_GUARD  # 2**62
    net = PetriNet(name="huge_tokens")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_place("p", huge)
    net.add_transition("t")
    net.add_arc("src", "p")
    net.add_arc("p", "t")
    options = SchedulerOptions(max_nodes=100, backend="batched")
    # the static guard downgrades even explicit backend="batched"/"kernel"
    assert resolve_backend_for(net, options) == "scalar"
    assert (
        resolve_backend_for(net, SchedulerOptions(max_nodes=100, backend="kernel"))
        == "scalar"
    )
    scalar, batched, kernel = run_all_backends(net, "src", max_nodes=100)
    assert_results_equivalent(scalar, batched)
    assert batched.counters.batched_expansions == 0
    assert kernel.counters.kernel_expansions == 0

    # a comfortable margin below the guard stays on the batched path
    small = PetriNet(name="large_but_safe")
    small.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    small.add_place("p", 2**40)
    small.add_transition("t")
    small.add_arc("src", "p")
    small.add_arc("p", "t")
    assert resolve_backend_for(small, options) == "batched"
    assert (
        resolve_backend_for(small, SchedulerOptions(max_nodes=100, backend="kernel"))
        == "kernel"
    )
    scalar, batched, kernel = run_all_backends(small, "src", max_nodes=100)
    assert_results_equivalent(scalar, batched)


def test_expand_children_dtype_guard_raises():
    net = PetriNet(name="overflow_unit")
    net.add_place("p", 1)
    net.add_transition("t")
    net.add_arc("p", "t")
    inet = net.indexed()
    with pytest.raises(FrontierOverflowError):
        expand_children(inet, (FRONTIER_TOKEN_GUARD,), [0])
    # one below the guard is accepted and exact
    rows = expand_children(inet, (FRONTIER_TOKEN_GUARD - 1,), [0])
    assert rows.tolist() == [[FRONTIER_TOKEN_GUARD - 2]]


def test_expand_children_empty_frontier_shapes():
    net = PetriNet(name="shapes")
    net.add_place("p", 1)
    net.add_transition("t")
    net.add_arc("p", "t")
    inet = net.indexed()
    rows = expand_children(inet, (1,), [])
    assert rows.shape == (0, 1)
    mask = irrelevance_frontier_mask(
        rows, np.zeros((0, 1), dtype=np.int64), np.zeros(1, dtype=np.int64)
    )
    assert mask.shape == (0,)


# ---------------------------------------------------------------------------
# backend resolution rules
# ---------------------------------------------------------------------------


class _OpaqueCondition(TerminationCondition):
    """A user condition the batched backend cannot decompose."""

    name = "opaque"

    def holds(self, tree, node):
        return False


def test_unsupported_termination_condition_forces_scalar():
    net = random_choice_net(2, seed=1)
    opaque = CompositeCondition(
        conditions=[_OpaqueCondition(), NodeBudget(max_nodes=400)]
    )
    assert split_frontier_conditions(opaque) is None
    options = SchedulerOptions(backend="batched", termination=opaque, max_nodes=400)
    assert resolve_backend_for(net, options, opaque) == "scalar"
    kernel_options = SchedulerOptions(
        backend="kernel", termination=opaque, max_nodes=400
    )
    assert resolve_backend_for(net, kernel_options, opaque) == "scalar"
    batched_request = find_schedule(net, "src", options=options)
    scalar = find_schedule(
        net,
        "src",
        options=SchedulerOptions(backend="scalar", termination=opaque, max_nodes=400),
    )
    assert batched_request.counters.batched_expansions == 0
    assert_results_equivalent(scalar, batched_request)


def test_unknown_backend_is_rejected():
    net = random_marked_graph(3, seed=0)
    with pytest.raises(ValueError, match="unknown scheduler backend"):
        find_schedule(net, "src", options=SchedulerOptions(backend="vectorised"))


def test_auto_resolves_to_kernel_for_default_options():
    net = random_choice_net(2, seed=2)
    assert resolve_backend_for(net, SchedulerOptions()) == "kernel"
    result = find_schedule(net, "src")
    assert result.counters.kernel_expansions > 0
    assert result.counters.batched_expansions == 0
    # an explicit "batched" request keeps the un-fused reference path
    assert resolve_backend_for(net, SchedulerOptions(backend="batched")) == "batched"


# ---------------------------------------------------------------------------
# the chunked irrelevance frontier mask (fixed memory budget on deep paths)
# ---------------------------------------------------------------------------


def _random_irrelevance_inputs(n_children, depth, n_places, seed):
    rng = np.random.default_rng(seed)
    children = rng.integers(0, 4, size=(n_children, n_places), dtype=np.int64)
    ancestors = rng.integers(0, 4, size=(depth, n_places), dtype=np.int64)
    # plant some guaranteed-irrelevant pairs: child == ancestor + growth on a
    # place the ancestor already saturates (degree 0 means always saturated)
    degrees = rng.integers(0, 3, size=n_places, dtype=np.int64)
    for child in range(0, n_children, 7):
        ancestor = ancestors[child % depth].copy()
        saturated = np.flatnonzero(ancestor >= degrees)
        if saturated.size:
            grown = ancestor.copy()
            grown[saturated[0]] += 1
            children[child] = grown
    return children, ancestors, degrees


@pytest.mark.parametrize("seed", range(5))
def test_chunked_irrelevance_mask_is_bitwise_identical(seed):
    from repro.petrinet.batched import irrelevance_frontier_mask

    children, ancestors, degrees = _random_irrelevance_inputs(33, 500, 17, seed)
    unchunked = irrelevance_frontier_mask(
        children, ancestors, degrees, chunk_elements=1 << 62
    )
    for chunk_elements in (1, 64, 4096, 1 << 20):
        chunked = irrelevance_frontier_mask(
            children, ancestors, degrees, chunk_elements=chunk_elements
        )
        assert np.array_equal(chunked, unchunked), chunk_elements
    # the default budget agrees too
    assert np.array_equal(
        irrelevance_frontier_mask(children, ancestors, degrees), unchunked
    )


def test_chunked_irrelevance_mask_handles_empty_inputs():
    from repro.petrinet.batched import irrelevance_frontier_mask

    degrees = np.zeros(4, dtype=np.int64)
    empty_children = np.zeros((0, 4), dtype=np.int64)
    some_children = np.zeros((2, 4), dtype=np.int64)
    empty_ancestors = np.zeros((0, 4), dtype=np.int64)
    assert irrelevance_frontier_mask(
        empty_children, np.ones((3, 4), dtype=np.int64), degrees
    ).shape == (0,)
    assert not irrelevance_frontier_mask(
        some_children, empty_ancestors, degrees
    ).any()


def test_depth_500_path_stays_under_the_memory_budget():
    """The regression this chunking exists for: a deep path must not
    materialise the O(children x depth x places) cube."""
    import tracemalloc

    from repro.petrinet.batched import (
        IRRELEVANCE_CHUNK_ELEMENTS,
        irrelevance_frontier_mask,
    )

    children, ancestors, degrees = _random_irrelevance_inputs(128, 500, 256, 3)
    cube_bytes = children.shape[0] * ancestors.shape[0] * children.shape[1]
    assert cube_bytes > 4 * IRRELEVANCE_CHUNK_ELEMENTS  # the cube would blow it

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        chunked = irrelevance_frontier_mask(children, ancestors, degrees)
        _size, chunked_peak = tracemalloc.get_traced_memory()

        tracemalloc.reset_peak()
        unchunked = irrelevance_frontier_mask(
            children, ancestors, degrees, chunk_elements=1 << 62
        )
        _size, unchunked_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert np.array_equal(chunked, unchunked)
    # a handful of per-chunk boolean intermediates (int64 comparisons produce
    # bool arrays of chunk size), nowhere near the full cube
    assert chunked_peak < 16 * IRRELEVANCE_CHUNK_ELEMENTS, chunked_peak
    assert unchunked_peak > chunked_peak * 2, (unchunked_peak, chunked_peak)
