"""Equivalence suite: the indexed core against legacy Marking semantics.

The indexed core (``repro.petrinet.indexed``) is the dense substrate every
marking-walking layer now runs on.  These tests pin its semantics to the
original name-based implementation: reference routines reimplement the seed's
dict-based firing rule and full-scan enabled set, and random firing walks over
the paper's figure nets must agree step by step -- markings, enabled sets
(full-scan *and* incremental), ECS enumeration, and reachability graphs.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Tuple

import pytest

from repro.apps import paper_nets
from repro.petrinet.analysis import StructuralAnalysis, compute_ecs_partition
from repro.petrinet.indexed import IndexedNet, MarkingStore
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.petrinet.reachability import build_reachability_graph
from repro.scheduling.ep import find_schedule


# ---------------------------------------------------------------------------
# reference implementation (the seed's semantics, kept independent of the
# production code paths so regressions in either representation surface)
# ---------------------------------------------------------------------------


def reference_is_enabled(net: PetriNet, transition: str, marking: Marking) -> bool:
    return all(marking[place] >= weight for place, weight in net.pre[transition].items())


def reference_fire(net: PetriNet, transition: str, marking: Marking) -> Marking:
    assert reference_is_enabled(net, transition, marking)
    deltas: Dict[str, int] = {}
    for place, weight in net.pre[transition].items():
        deltas[place] = deltas.get(place, 0) - weight
    for place, weight in net.post[transition].items():
        deltas[place] = deltas.get(place, 0) + weight
    return marking.add(deltas)


def reference_enabled(net: PetriNet, marking: Marking) -> List[str]:
    return sorted(t for t in net.transitions if reference_is_enabled(net, t, marking))


def reference_reachability(
    net: PetriNet, max_nodes: int
) -> Tuple[List[Marking], List[Tuple[int, str, int]]]:
    """Seed-style BFS; returns markings in discovery order plus edge triples."""
    initial = Marking(net.initial_tokens)
    markings = [initial]
    index_of = {initial: 0}
    edges: List[Tuple[int, str, int]] = []
    frontier = deque([0])
    while frontier:
        index = frontier.popleft()
        for transition in reference_enabled(net, markings[index]):
            successor = reference_fire(net, transition, markings[index])
            existing = index_of.get(successor)
            if existing is not None:
                edges.append((index, transition, existing))
                continue
            if len(markings) >= max_nodes:
                continue
            index_of[successor] = len(markings)
            markings.append(successor)
            edges.append((index, transition, len(markings) - 1))
            frontier.append(len(markings) - 1)
    return markings, edges


def all_figure_nets() -> List[PetriNet]:
    return [
        paper_nets.figure_4a(),
        paper_nets.figure_4b(),
        paper_nets.figure_5(),
        paper_nets.figure_6(),
        paper_nets.figure_7(3),
        paper_nets.figure_7(4),
        paper_nets.figure_8(),
        paper_nets.simple_pipeline(4, 2),
    ]


# ---------------------------------------------------------------------------
# random firing equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("net", all_figure_nets(), ids=lambda net: net.name)
def test_random_firing_sequences_agree(net: PetriNet):
    rng = random.Random(hash(net.name) & 0xFFFF)
    indexed = net.indexed()
    marking = net.initial_marking
    vec = indexed.initial_vec
    enabled_inc = frozenset(indexed.enabled_vec(vec))
    for _step in range(60):
        # identical views of the current marking
        assert indexed.vec_of_marking(marking) == vec
        assert indexed.marking_of_vec(vec) == marking
        # identical enabled sets: reference scan, dense scan, incremental
        expected = reference_enabled(net, marking)
        assert [indexed.transition_names[t] for t in indexed.enabled_vec(vec)] == expected
        assert sorted(indexed.transition_names[t] for t in enabled_inc) == expected
        assert net.enabled_transitions(marking) == expected
        if not expected:
            break
        transition = rng.choice(expected)
        tid = indexed.transition_index[transition]
        marking = reference_fire(net, transition, marking)
        vec = indexed.fire_vec(tid, vec)
        enabled_inc = indexed.enabled_after(enabled_inc, tid, vec)


@pytest.mark.parametrize("net", all_figure_nets(), ids=lambda net: net.name)
def test_facade_fire_agrees_with_reference(net: PetriNet):
    rng = random.Random(1234)
    marking = net.initial_marking
    for _step in range(40):
        enabled = reference_enabled(net, marking)
        if not enabled:
            break
        transition = rng.choice(enabled)
        assert net.is_enabled(transition, marking)
        fired = net.fire(transition, marking)
        assert fired == reference_fire(net, transition, marking)
        marking = fired


@pytest.mark.parametrize("net", all_figure_nets(), ids=lambda net: net.name)
def test_enabled_ecss_agree(net: PetriNet):
    rng = random.Random(99)
    partition = compute_ecs_partition(net)
    analysis = StructuralAnalysis.of(net)
    marking = net.initial_marking
    for _step in range(40):
        expected = [
            ecs for ecs in partition if reference_is_enabled(net, min(ecs), marking)
        ]
        assert analysis.enabled_ecss(marking) == expected
        enabled = reference_enabled(net, marking)
        if not enabled:
            break
        marking = reference_fire(net, rng.choice(enabled), marking)


# ---------------------------------------------------------------------------
# reachability equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("net", all_figure_nets(), ids=lambda net: net.name)
def test_reachability_graph_agrees(net: PetriNet):
    max_nodes = 300
    markings, edges = reference_reachability(net, max_nodes)
    graph = build_reachability_graph(net, max_nodes=max_nodes)
    assert [node.marking for node in graph.nodes] == markings
    got_edges = [
        (node.index, transition, target)
        for node in graph.nodes
        for transition, target in sorted(node.successors.items())
    ]
    assert sorted(got_edges) == sorted(edges)


# ---------------------------------------------------------------------------
# interning and cache invalidation
# ---------------------------------------------------------------------------


def test_marking_store_interns_vectors():
    store = MarkingStore()
    first = store.intern((0, 1, 2))
    second = store.intern((0, 1, 2))
    assert first is second
    assert len(store) == 1
    store.intern((5,))
    assert len(store) == 2
    assert (5,) in store


def test_indexed_view_is_cached_and_invalidated():
    net = paper_nets.figure_8()
    first = net.indexed()
    assert net.indexed() is first  # cached while the structure is unchanged
    net.add_place("extra", 1)
    second = net.indexed()
    assert second is not first
    assert "extra" in second.place_index
    # adjacency reflects the new arc immediately
    net.add_transition("drain")
    net.add_arc("extra", "drain")
    assert net.postset_of_place("extra") == {"drain": 1}
    assert net.enabled_transitions(net.initial_marking).count("drain") == 1


def test_direct_mutation_with_invalidate_caches():
    net = paper_nets.figure_8()
    net.indexed()  # populate the cache
    # simulate the linker/compiler style of surgery: raw dict mutation
    del net.pre["e"]["p3"]
    net.pre["e"]["p2"] = 1
    net.invalidate_caches()
    marking = Marking({"p2": 1})
    assert "e" in net.enabled_transitions(marking)
    assert net.postset_of_place("p2") == {"d": 1, "e": 1}


# ---------------------------------------------------------------------------
# scheduler integration: counters and schedule equivalence
# ---------------------------------------------------------------------------


def test_find_schedule_rebuilds_stale_analysis():
    net = paper_nets.figure_5()
    analysis = StructuralAnalysis.of(net)
    # structural mutation after the analysis was built: transition IDs shift
    net.add_place("extra")
    net.add_transition("zz_extra")
    net.add_arc("extra", "zz_extra")
    result = find_schedule(net, "a", analysis=analysis, raise_on_failure=True)
    assert result.success
    result.schedule.validate()


def test_set_initial_tokens_refreshes_indexed_snapshot():
    net = paper_nets.figure_5()
    indexed = net.indexed()
    net.set_initial_tokens("p0", 3)
    assert net.indexed() is indexed  # token change is not structural
    assert indexed.initial_vec == indexed.vec_of_marking(net.initial_marking)
    assert net.initial_marking["p0"] == 3


def test_search_counters_are_populated():
    net = paper_nets.figure_5()
    result = find_schedule(net, "a", raise_on_failure=True)
    counters = result.counters
    assert counters.nodes_expanded > 0
    assert counters.fires > 0
    assert counters.enabled_scans >= 1
    assert counters.interned_markings > 0
    assert set(counters.as_dict()) == {
        "nodes_expanded",
        "fires",
        "enabled_scans",
        "enabled_updates",
        "interned_markings",
        "batched_expansions",
        "kernel_expansions",
    }


@pytest.mark.parametrize(
    "net,source",
    [
        (paper_nets.figure_5(), "a"),
        (paper_nets.figure_5(), "d"),
        (paper_nets.figure_6(), "a"),
        (paper_nets.figure_7(3), "a"),
        (paper_nets.figure_8(), "a"),
    ],
    ids=["fig5-a", "fig5-d", "fig6-a", "fig7-a", "fig8-a"],
)
def test_schedules_still_validate_against_facade_semantics(net: PetriNet, source: str):
    result = find_schedule(net, source, raise_on_failure=True)
    schedule = result.schedule
    assert schedule is not None
    schedule.validate()  # properties 1-5 are checked with facade fire/enabled
    # every edge agrees with the reference firing rule
    for node_index, transition, target in schedule.edges():
        node = schedule.node(node_index)
        assert reference_is_enabled(net, transition, node.marking)
        assert reference_fire(net, transition, node.marking) == schedule.node(target).marking
