"""Direct unit tests of :mod:`repro.runtime.cost_model` and
:mod:`repro.runtime.rtos`.

Both models were previously exercised only through the end-to-end experiment
tables; these pin their arithmetic at the unit level -- compiler-profile
scaling, the framework-cost invariance the paper's measurement methodology
assumes (the RTOS is pre-compiled, so optimisation levels do not touch it),
the CodeSizeModel.estimate construct table, and the round-robin scheduler's
decision / context-switch / activation accounting.
"""

from __future__ import annotations

import pytest

from repro.flowc.interpreter import OperationCounter
from repro.runtime.channels import CommunicationStats
from repro.runtime.cost_model import (
    PROFILES,
    CodeSizeModel,
    CommunicationCosts,
    CostModel,
    CycleCosts,
    SchedulingCosts,
)
from repro.runtime.rtos import RoundRobinScheduler, RtosCosts


def _ops(**kwargs) -> OperationCounter:
    counter = OperationCounter()
    for name, value in kwargs.items():
        setattr(counter, name, value)
    return counter


def _comm(**kwargs) -> CommunicationStats:
    stats = CommunicationStats()
    for name, value in kwargs.items():
        setattr(stats, name, value)
    return stats


class TestCostModelScaling:
    def test_computation_scales_with_profile(self):
        model = CostModel()
        ops = _ops(arithmetic=10, comparisons=5, assignments=7, memory=3, branches=2)
        comm = CommunicationStats()
        base = model.execution_cycles(ops, comm, profile=PROFILES["pfc"])
        optimised = model.execution_cycles(ops, comm, profile=PROFILES["pfc-O"])
        assert optimised == pytest.approx(base * PROFILES["pfc-O"].computation_scale)
        assert PROFILES["pfc"].computation_scale == 1.0

    def test_framework_costs_do_not_scale(self):
        """Context switches / decisions / dispatches are pre-compiled RTOS
        code: identical cycles under every compiler profile."""
        model = CostModel()
        empty_ops, empty_comm = OperationCounter(), CommunicationStats()
        framework = dict(
            context_switches=4, scheduler_decisions=9, isr_dispatches=2, state_updates=11
        )
        totals = {
            name: model.execution_cycles(
                empty_ops, empty_comm, profile=profile, **framework
            )
            for name, profile in PROFILES.items()
        }
        assert len(set(totals.values())) == 1
        costs = SchedulingCosts()
        assert totals["pfc"] == (
            4 * costs.context_switch
            + 9 * costs.scheduler_decision
            + 2 * costs.isr_dispatch
            + 11 * costs.task_state_update
        )

    def test_communication_does_not_scale(self):
        model = CostModel()
        comm = _comm(
            intertask_reads=2, intertask_writes=1, intertask_items=6,
            intratask_reads=3, intratask_writes=3, intratask_items=9,
            environment_reads=1, environment_writes=1, environment_items=2,
            selects=1,
        )
        totals = {
            model.execution_cycles(OperationCounter(), comm, profile=profile)
            for profile in PROFILES.values()
        }
        assert len(totals) == 1
        assert totals == {CommunicationCosts().cycles(comm)}

    def test_cycle_cost_table_is_linear(self):
        costs = CycleCosts()
        assert costs.computation_cycles(_ops(arithmetic=1)) == costs.arithmetic
        assert costs.computation_cycles(_ops(calls=2, selects=1)) == (
            2 * costs.call + costs.select
        )
        doubled = _ops(arithmetic=4, branches=6)
        assert costs.computation_cycles(doubled) == 2 * costs.computation_cycles(
            _ops(arithmetic=2, branches=3)
        )


class TestCodeSizeEstimate:
    def test_estimate_matches_cost_table(self):
        model = CodeSizeModel()
        total = model.estimate({"per_label": 3, "per_goto": 2, "task_prologue": 1})
        assert total == (
            3 * model.costs.per_label + 2 * model.costs.per_goto + model.costs.task_prologue
        )

    def test_estimate_scales_like_scaled(self):
        model = CodeSizeModel()
        counts = {"per_statement": 10, "per_branch": 4}
        raw = model.estimate(counts)
        for profile in PROFILES.values():
            assert model.estimate(counts, profile=profile) == model.scaled(raw, profile)

    def test_estimate_rejects_unknown_constructs(self):
        with pytest.raises(KeyError):
            CodeSizeModel().estimate({"per_typo": 1})

    def test_empty_estimate_is_zero(self):
        assert CodeSizeModel().estimate({}) == 0


class _FakeTask:
    """Runs for a scripted number of activations, then blocks forever."""

    def __init__(self, name: str, activations: int, steps_per_run: int = 1):
        self.name = name
        self.remaining = activations
        self.steps_per_run = steps_per_run

    def can_run(self) -> bool:
        return self.remaining > 0

    def run(self, quantum: int) -> int:
        assert quantum > 0
        if self.remaining <= 0:
            return 0
        self.remaining -= 1
        return self.steps_per_run


class TestRoundRobinScheduler:
    def test_needs_at_least_one_task(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler([])

    def test_decision_counting_single_task(self):
        """One task, three activations: every poll is a decision, only the
        initial dispatch is a context switch."""
        scheduler = RoundRobinScheduler([_FakeTask("a", 3)])
        costs = scheduler.run_until_quiescent()
        # rounds 1-3 run the task, round 4 finds it blocked and terminates
        assert costs.scheduler_decisions == 4
        assert costs.idle_polls == 1
        assert costs.context_switches == 1  # initial dispatch only
        assert costs.activations == {"a": 3}

    def test_alternation_counts_context_switches(self):
        """Two tasks alternating each round: every handoff is a switch."""
        scheduler = RoundRobinScheduler([_FakeTask("a", 2), _FakeTask("b", 2)])
        costs = scheduler.run_until_quiescent()
        # a b a b -> initial dispatch + 3 handoffs
        assert costs.context_switches == 4
        assert costs.activations == {"a": 2, "b": 2}
        # 2 full rounds x 2 polls + final all-blocked round
        assert costs.scheduler_decisions == 6
        assert costs.idle_polls == 2

    def test_consecutive_runs_of_same_task_do_not_switch(self):
        """A task that keeps running while its peer is blocked stays
        dispatched: no context switch beyond the initial one."""
        scheduler = RoundRobinScheduler([_FakeTask("a", 3), _FakeTask("b", 0)])
        costs = scheduler.run_until_quiescent()
        assert costs.context_switches == 1
        assert costs.activations == {"a": 3}
        # b is polled (and found blocked) every round; the final round polls
        # both tasks idle before terminating
        assert costs.idle_polls == 3 + 2

    def test_max_rounds_bounds_the_loop(self):
        scheduler = RoundRobinScheduler([_FakeTask("a", 1_000_000)])
        costs = scheduler.run_until_quiescent(max_rounds=5)
        assert costs.activations == {"a": 5}
        assert costs.scheduler_decisions == 5

    def test_costs_object_is_reused_across_calls(self):
        task = _FakeTask("a", 2)
        scheduler = RoundRobinScheduler([task])
        first = scheduler.run_until_quiescent()
        assert first is scheduler.costs
        task.remaining = 1
        second = scheduler.run_until_quiescent()
        assert second is first  # accounting accumulates on one RtosCosts
        assert second.activations == {"a": 3}

    def test_record_activation_counts(self):
        costs = RtosCosts()
        costs.record_activation("x")
        costs.record_activation("x")
        costs.record_activation("y")
        assert costs.activations == {"x": 2, "y": 1}
