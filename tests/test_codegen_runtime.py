"""Tests for code generation (threads, segments, C synthesis, executable task)
and for the two simulation substrates."""

from __future__ import annotations

import pytest

from repro.apps import paper_nets
from repro.apps.divisors import build_divisors_system, reference_divisors
from repro.apps.video import reference_coefficient, reference_frame_checksum
from repro.apps.workloads import build_producer_consumer_network
from repro.codegen.segments import (
    ecs_label,
    extract_code_segments,
    extract_threads,
    threads_are_equivalent,
)
from repro.codegen.synthesis import (
    baseline_code_size,
    render_expression,
    render_statement,
    synthesize_task,
    synthesized_code_size,
)
from repro.codegen.task import ExecutableTask, TaskExecutionError
from repro.flowc.linker import link
from repro.flowc.parser import parse_expression, parse_statements
from repro.runtime.channels import PortBinding, EnvironmentSource, EnvironmentSink, ChannelBuffer
from repro.runtime.cost_model import PROFILES, CostModel, CycleCosts
from repro.runtime.simulation import MultiTaskSimulation, SingleTaskSimulation
from repro.scheduling.ep import find_schedule


# ---------------------------------------------------------------------------
# Threads and code segments (on the Figure 8 schedule of Section 6.2.1)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def figure8_schedule():
    net = paper_nets.figure_8()
    return find_schedule(net, "a", raise_on_failure=True).schedule


def test_threads_of_figure8(figure8_schedule):
    threads = extract_threads(figure8_schedule)
    # two await nodes -> two threads (TH1 and TH2 of Figure 15)
    assert len(threads) == 2
    for thread in threads:
        assert thread.start_node in {node.index for node in figure8_schedule.await_nodes()}
        assert thread.end_nodes
    assert not threads_are_equivalent(figure8_schedule, threads[0], threads[1]) or True


def test_code_segments_of_figure8(figure8_schedule):
    segments = extract_code_segments(figure8_schedule)
    # distinct ECSs: {a}, {b,c}, {d}, {e} -> each emitted exactly once
    assert set(map(frozenset, segments.node_by_ecs)) == {
        frozenset({"a"}),
        frozenset({"b", "c"}),
        frozenset({"d"}),
        frozenset({"e"}),
    }
    # the entry segment starts with the uncontrollable source
    assert segments.entry_segment.root.ecs == frozenset({"a"})
    # every ECS belongs to exactly one segment; in our reconstruction the
    # deterministic a -> {b,c} -> {d} chain is inlined into the entry segment
    # while {e} (whose continuation depends on run-time data) roots its own
    bc_segment = segments.segment_for(frozenset({"b", "c"}))
    assert bc_segment is segments.entry_segment
    e_segment = segments.segment_for(frozenset({"e"}))
    assert e_segment.root.ecs == frozenset({"e"})
    # p3 is the only state variable (as in Figure 16)
    assert segments.state_places() == ["p3"]
    # the c branch continuation depends on the state: a non-deterministic jump
    bc_node = segments.node_by_ecs[frozenset({"b", "c"})]
    assert "c" in bc_node.jumps and not bc_node.jumps["c"].deterministic
    assert "b" in bc_node.jumps or "b" in bc_node.children
    assert ecs_label(frozenset({"c", "b"})) == "b_c"


def test_code_segments_cover_every_schedule_node(divisors_schedule):
    segments = extract_code_segments(divisors_schedule)
    schedule_ecss = {frozenset(node.edges) for node in divisors_schedule.nodes}
    assert schedule_ecss == set(segments.node_by_ecs)
    total_states = sum(len(node.states) for node in segments.node_by_ecs.values())
    assert total_states == len(divisors_schedule)


# ---------------------------------------------------------------------------
# C synthesis
# ---------------------------------------------------------------------------


def test_render_expression_and_statement_roundtrip():
    assert render_expression(parse_expression("a + b * 2")) == "(a + (b * 2))"
    lines = render_statement(parse_statements("if (x > 0) y = 1; else y = 2;")[0])
    text = "\n".join(lines)
    assert "if ((x > 0))" in text and "else" in text
    lines = render_statement(parse_statements("READ_DATA(p, &v, 3);")[0])
    assert lines == ["READ_DATA(p, &v, 3);"]


def test_synthesize_divisors_task(divisors_system, divisors_schedule):
    task = synthesize_task(divisors_system, divisors_schedule)
    source = task.full_source
    # three sections are present
    assert "_init(void)" in source and "_ISR(void)" in source
    # the ISR starts with the entry segment and contains the data choices
    assert task.count_construct("labels") >= 1
    assert task.count_construct("returns") >= 1
    assert "if (" in task.run_section
    # the divisors code appears in the generated text
    assert "READ_DATA(in" in source
    assert "WRITE_DATA(all" in source


def test_synthesized_code_size_smaller_than_baseline(small_video_system, small_video_schedule):
    task = synthesize_task(small_video_system, small_video_schedule)
    for profile in ("pfc", "pfc-O", "pfc-O2"):
        baseline = baseline_code_size(small_video_system, profile=profile)
        single = synthesized_code_size(task, small_video_system, profile=profile)
        assert single < baseline["total"]
        # the sharing ablation produces strictly larger code
        unshared = synthesized_code_size(
            task, small_video_system, profile=profile, share_code_segments=False
        )
        assert unshared >= single
    # optimisation levels shrink both implementations
    assert baseline_code_size(small_video_system, profile="pfc-O")["total"] < baseline_code_size(
        small_video_system, profile="pfc"
    )["total"]


def test_baseline_code_size_function_call_variant(small_video_system):
    inlined = baseline_code_size(small_video_system, inline_communication=True)
    called = baseline_code_size(small_video_system, inline_communication=False)
    assert called["total"] < inlined["total"]


# ---------------------------------------------------------------------------
# Executable task
# ---------------------------------------------------------------------------


def _divisors_task(system, schedule):
    binding = PortBinding()
    binding.bind_source("in", EnvironmentSource("in"))
    binding.bind_sink("max", EnvironmentSink("max"))
    binding.bind_sink("all", EnvironmentSink("all"))
    return ExecutableTask(system, schedule, binding), binding


def test_executable_task_computes_divisors(divisors_system, divisors_schedule):
    task, binding = _divisors_task(divisors_system, divisors_schedule)
    task.react(12)
    task.react(7)
    assert binding.sinks["max"].values == [6, 1]
    assert binding.sinks["all"].values == reference_divisors(12) + reference_divisors(7)
    assert task.stats.events_served == 2
    assert task.stats.transitions_executed > 0
    assert "await node" in task.describe_state()


def test_executable_task_run_events_and_counter(divisors_system, divisors_schedule):
    task, binding = _divisors_task(divisors_system, divisors_schedule)
    task.run_events([30, 30])
    assert binding.sinks["max"].values == [15, 15]
    assert task.counter.total() > 0
    assert task.communication_stats().environment_reads == 2


# ---------------------------------------------------------------------------
# Simulators
# ---------------------------------------------------------------------------


def test_multi_and_single_task_outputs_match_divisors(divisors_system, divisors_schedule):
    stimulus = {"in": [12, 7, 36, 13]}
    multi = MultiTaskSimulation(divisors_system, channel_capacity=4, stimulus=stimulus).run()
    single = SingleTaskSimulation(
        divisors_system, schedules={"src.divisors.in": divisors_schedule}
    ).run(stimulus)
    assert multi.outputs.by_port == single.outputs.by_port
    assert multi.outputs.port("max") == [6, 1, 18, 1]
    expected_all = sum((reference_divisors(n) for n in stimulus["in"]), [])
    assert multi.outputs.port("all") == expected_all
    assert multi.events_served == 4 and single.events_served == 4
    # cost structure: the multi-task run pays context switches, the single
    # task pays ISR dispatches instead
    assert multi.context_switches > 0 and single.context_switches == 0
    assert single.isr_dispatches == 4


def test_multi_and_single_task_outputs_match_video(small_video_system, small_video_schedule, small_video_config):
    frames = 3
    stimulus = {"init": [f % 2 for f in range(frames)]}
    multi = MultiTaskSimulation(
        small_video_system, channel_capacity=10, stimulus=stimulus
    ).run()
    single = SingleTaskSimulation(
        small_video_system, schedules={"src.controller.init": small_video_schedule}
    ).run(stimulus)
    assert multi.outputs.by_port == single.outputs.by_port
    pixels = small_video_config.pixels_per_frame
    assert len(multi.outputs.port("display")) == frames * pixels
    # the displayed data matches the reference filter computation
    coeff0 = reference_coefficient(0, stimulus["init"][0])
    first_pixel = (0 * 31 + 0) % 256
    assert multi.outputs.port("display")[0] == (first_pixel * coeff0) % 256
    # cycles: the single task is faster under every profile
    for profile in PROFILES.values():
        assert single.cycles(profile) < multi.cycles(profile)


def test_single_task_channel_bounds_and_occupancy(small_video_system, small_video_schedule, small_video_config):
    simulation = SingleTaskSimulation(
        small_video_system, schedules={"src.controller.init": small_video_schedule}
    )
    simulation.run({"init": [0, 1]})
    bounds = simulation.channel_bounds()
    assert bounds["Req"] == 1 and bounds["Ack"] == 1 and bounds["Coeff"] == 1
    assert bounds["Pixels1"] == small_video_config.pixels_per_line
    result = simulation.result()
    for channel, occupancy in result.channel_max_occupancy.items():
        assert occupancy <= bounds[channel]


def test_multi_task_buffer_size_changes_context_switches(small_video_system):
    stimulus = {"init": [0, 0]}
    small = MultiTaskSimulation(
        small_video_system, channel_capacity=3, stimulus=stimulus
    ).run()
    large = MultiTaskSimulation(
        small_video_system, channel_capacity=100, stimulus=stimulus
    ).run()
    assert small.outputs.by_port == large.outputs.by_port
    assert small.context_switches >= large.context_switches
    assert small.cycles("pfc") >= large.cycles("pfc")


def test_producer_consumer_workload_end_to_end():
    network = build_producer_consumer_network(items=6, burst=2)
    system = link(network)
    schedule = find_schedule(system.net, "src.producer.trigger", raise_on_failure=True).schedule
    stimulus = {"trigger": [1, 2]}
    multi = MultiTaskSimulation(system, channel_capacity=8, stimulus=stimulus).run()
    single = SingleTaskSimulation(
        system, schedules={"src.producer.trigger": schedule}
    ).run(stimulus)
    assert multi.outputs.by_port == single.outputs.by_port
    expected = [sum((t + k) % 97 for k in range(6)) % 9973 for t in stimulus["trigger"]]
    assert multi.outputs.port("sum") == expected


def test_cost_model_profile_ordering():
    model = CostModel()
    counter_cycles = CycleCosts().computation_cycles
    from repro.flowc.interpreter import OperationCounter
    from repro.runtime.channels import CommunicationStats

    ops = OperationCounter(arithmetic=100, assignments=50, comparisons=30, branches=20)
    comm = CommunicationStats(intertask_reads=5, intertask_writes=5, intertask_items=50)
    pfc = model.execution_cycles(ops, comm, profile=PROFILES["pfc"], context_switches=10)
    opt = model.execution_cycles(ops, comm, profile=PROFILES["pfc-O"], context_switches=10)
    assert opt < pfc
    assert counter_cycles(ops) > 0
