"""Direct unit tests of :mod:`repro.codegen.segments` edge cases.

Hand-built minimal schedules pin the thread extraction and code-segment
construction at their boundaries -- the empty reaction, single-transition
reactions, unknown-ECS lookups and await-node placement -- independently of
the end-to-end codegen tests.
"""

from __future__ import annotations

import pytest

from repro.codegen.segments import (
    ecs_label,
    extract_code_segments,
    extract_threads,
    threads_are_equivalent,
)
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet, SourceKind
from repro.scheduling.schedule import Schedule


def _minimal_net() -> PetriNet:
    """src -> p -> consume, with src uncontrollable."""
    net = PetriNet("minimal")
    net.add_place("p")
    net.add_place("ctl", 1)
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("consume")
    net.add_arc("src", "p")
    net.add_arc("p", "consume")
    net.add_arc("ctl", "consume")
    net.add_arc("consume", "ctl")
    return net


def _single_reaction_schedule(net: PetriNet) -> Schedule:
    """root --src--> (p=1) --consume--> root."""
    schedule = Schedule(net=net, source_transition="src")
    schedule.add_node(Marking({"ctl": 1}))
    schedule.add_node(Marking({"ctl": 1, "p": 1}))
    schedule.add_edge(0, "src", 1)
    schedule.add_edge(1, "consume", 0)
    return schedule


def _empty_reaction_schedule() -> Schedule:
    """A source with no postset: the reaction does nothing at all."""
    net = PetriNet("empty")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    schedule = Schedule(net=net, source_transition="src")
    schedule.add_node(Marking({}))
    schedule.add_edge(0, "src", 0)
    return schedule


class TestThreads:
    def test_single_reaction_thread(self):
        schedule = _single_reaction_schedule(_minimal_net())
        threads = extract_threads(schedule)
        assert len(threads) == 1
        (thread,) = threads
        assert thread.start_node == 0
        assert thread.nodes == {0, 1}
        # the reaction terminates back at the await node
        assert thread.end_nodes == {0}

    def test_empty_reaction_thread(self):
        schedule = _empty_reaction_schedule()
        (thread,) = extract_threads(schedule)
        assert thread.nodes == {0}
        assert thread.end_nodes == {0}

    def test_thread_is_equivalent_to_itself(self):
        schedule = _single_reaction_schedule(_minimal_net())
        (thread,) = extract_threads(schedule)
        assert threads_are_equivalent(schedule, thread, thread)


class TestSegments:
    def test_single_reaction_segments(self):
        schedule = _single_reaction_schedule(_minimal_net())
        segments = extract_code_segments(schedule)
        assert segments.source_ecs == frozenset({"src"})
        # consume is inlined under the entry segment: one segment, two nodes
        assert len(segments.segments) == 1
        assert len(segments.entry_segment) == 2
        child = segments.entry_segment.root.children["src"]
        assert child.ecs == frozenset({"consume"})
        # the reaction's last transition returns to the await node
        jump = child.jumps["consume"]
        assert jump.deterministic and jump.is_return
        # no state-indexed switches anywhere, so no state variables either
        assert segments.state_places() == []

    def test_empty_reaction_segment(self):
        schedule = _empty_reaction_schedule()
        segments = extract_code_segments(schedule)
        assert len(segments.segments) == 1
        assert len(segments.entry_segment) == 1
        jump = segments.entry_segment.root.jumps["src"]
        assert jump.deterministic and jump.is_return

    def test_segment_for_unknown_ecs_raises(self):
        schedule = _single_reaction_schedule(_minimal_net())
        segments = extract_code_segments(schedule)
        with pytest.raises(KeyError):
            segments.segment_for(frozenset({"no_such_transition"}))

    def test_ecs_label_is_sorted_and_stable(self):
        assert ecs_label(frozenset({"b", "a"})) == "a_b"


class TestAwaitPlacement:
    """Await nodes must stay segment roots -- never inlined mid-segment."""

    def test_await_ecs_is_never_an_inlined_child(self, divisors_schedule):
        segments = extract_code_segments(divisors_schedule)
        await_ecss = {
            frozenset(node.edges) for node in divisors_schedule.await_nodes()
        }
        inlined = {
            child.ecs
            for segment in segments.segments
            for node in segment.nodes()
            for child in node.children.values()
        }
        assert not (await_ecss & inlined)

    def test_each_ecs_emitted_exactly_once(self, divisors_schedule):
        """Section 6.2's property: full coverage, one emission per ECS."""
        segments = extract_code_segments(divisors_schedule)
        emitted = [
            node.ecs for segment in segments.segments for node in segment.nodes()
        ]
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == set(segments.node_by_ecs)

    def test_threads_start_and_end_on_await_nodes(self, divisors_schedule):
        await_indices = {node.index for node in divisors_schedule.await_nodes()}
        threads = extract_threads(divisors_schedule)
        assert threads, "schedule must have at least one reaction"
        for thread in threads:
            assert thread.start_node in await_indices
            assert thread.end_nodes <= await_indices
