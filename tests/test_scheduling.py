"""Tests for schedules, termination conditions, the EP algorithm,
independence and runs, on the paper's figure nets and the FlowC systems."""

from __future__ import annotations

import pytest

from repro.apps import paper_nets
from repro.apps.false_paths import (
    build_false_path_network,
    build_select_rewrite_network,
    link_with_unrolling,
    link_without_unrolling,
)
from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet, SourceKind
from repro.scheduling.ep import SchedulerOptions, SchedulingFailure, find_all_schedules, find_schedule
from repro.scheduling.heuristics import (
    ECSLookahead,
    HeuristicContext,
    InvariantGuidedOrdering,
    NaiveOrdering,
    TieBreakOrdering,
    make_heuristic,
)
from repro.scheduling.independence import (
    are_mutually_independent,
    channel_size_report,
    combined_place_bounds,
    independence_report,
    is_independent_set,
)
from repro.scheduling.runs import RunError, build_run, check_executability, random_choice_resolver
from repro.scheduling.schedule import Schedule, ScheduleValidationError
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    MaxDepthCondition,
    NodeBudget,
    PlaceBoundCondition,
    UserBoundCondition,
    default_termination,
)


# ---------------------------------------------------------------------------
# Schedule structure and validation
# ---------------------------------------------------------------------------


def test_hand_built_schedule_for_figure_5_validates():
    net = paper_nets.figure_5()
    schedule = Schedule(net=net, source_transition="a")
    n0 = schedule.add_node(net.initial_marking)
    n1 = schedule.add_node(net.fire("a", net.initial_marking))
    m2 = net.fire("b", n1.marking)
    n2 = schedule.add_node(m2)
    schedule.add_edge(n0.index, "a", n1.index)
    schedule.add_edge(n1.index, "b", n2.index)
    schedule.add_edge(n2.index, "c", n0.index)
    schedule.validate()
    assert schedule.is_single_source()
    assert [node.index for node in schedule.await_nodes()] == [0]
    assert schedule.place_bounds()["p1"] == 1
    assert schedule.involved_transitions() == {"a", "b", "c"}


def test_schedule_validation_rejects_bad_graphs():
    net = paper_nets.figure_5()
    schedule = Schedule(net=net, source_transition="a")
    n0 = schedule.add_node(net.initial_marking)
    n1 = schedule.add_node(net.fire("a", net.initial_marking))
    schedule.add_edge(n0.index, "a", n1.index)
    # n1 has no outgoing edge: property 5 violated
    with pytest.raises(ScheduleValidationError):
        schedule.validate()
    # wrong marking on an edge target
    bad = Schedule(net=net, source_transition="a")
    b0 = bad.add_node(net.initial_marking)
    b1 = bad.add_node(net.initial_marking)  # should be the post-a marking
    bad.add_edge(b0.index, "a", b1.index)
    bad.add_edge(b1.index, "b", b0.index)
    with pytest.raises(ScheduleValidationError):
        bad.validate()


def test_schedule_root_requirements():
    net = paper_nets.figure_5()
    schedule = Schedule(net=net, source_transition="a")
    n0 = schedule.add_node(net.fire("a", net.initial_marking))  # wrong root marking
    n1 = schedule.add_node(net.initial_marking)
    schedule.add_edge(n0.index, "b", n1.index)
    schedule.add_edge(n1.index, "a", n0.index)
    with pytest.raises(ScheduleValidationError):
        schedule.validate()


# ---------------------------------------------------------------------------
# Termination conditions
# ---------------------------------------------------------------------------


class _FakeTree:
    """Minimal SchedulingTreeView over a single path of markings."""

    def __init__(self, markings):
        self.markings = markings

    def marking_of(self, node):
        return self.markings[node]

    def ancestors_of(self, node):
        return list(range(node - 1, -1, -1))

    def total_tokens_of(self, node):
        return self.markings[node].total_tokens()


def test_irrelevance_criterion_detects_saturated_growth():
    net = paper_nets.figure_4a()  # degree of p1 is 2+2-1 = 3
    criterion = IrrelevanceCriterion.for_net(net)
    tree = _FakeTree([Marking({"p1": 3}), Marking({"p1": 5})])
    assert criterion.holds(tree, 1)
    # growth from a non-saturated ancestor is not irrelevant
    tree2 = _FakeTree([Marking({"p1": 1}), Marking({"p1": 2})])
    assert not criterion.holds(tree2, 1)
    # equal markings are never classified irrelevant
    tree3 = _FakeTree([Marking({"p1": 3}), Marking({"p1": 3})])
    assert not criterion.holds(tree3, 1)


def test_place_bound_and_user_bound_conditions():
    net = paper_nets.figure_4a()
    bound = PlaceBoundCondition.uniform(net, 2)
    tree = _FakeTree([Marking({"p1": 1}), Marking({"p1": 3})])
    assert not bound.holds(tree, 0)
    assert bound.holds(tree, 1)

    bounded_net = PetriNet()
    bounded_net.add_place("ch", bound=1, is_port=True)
    bounded_net.add_transition("t")
    bounded_net.add_arc("t", "ch")
    user = UserBoundCondition.for_net(bounded_net)
    tree = _FakeTree([Marking({"ch": 1}), Marking({"ch": 2})])
    assert not user.holds(tree, 0)
    assert user.holds(tree, 1)


def test_composite_node_budget_and_depth_conditions():
    net = paper_nets.figure_4a()
    composite = default_termination(net, max_nodes=5)
    assert "irrelevance" in composite.describe()
    tree = _FakeTree([Marking({"p1": i}) for i in range(10)])
    assert NodeBudget(max_nodes=3).holds(tree, 3)
    assert not NodeBudget(max_nodes=3).holds(tree, 2)
    assert MaxDepthCondition(max_depth=2).holds(tree, 4)


# ---------------------------------------------------------------------------
# The EP algorithm on the paper's nets
# ---------------------------------------------------------------------------


def test_figure_4a_has_ss_schedules_for_both_sources():
    net = paper_nets.figure_4a()
    results = find_all_schedules(net)
    assert set(results) == {"a", "b"}
    for result in results.values():
        assert result.success
        result.schedule.validate()
        assert result.schedule.is_single_source()


def test_figure_4b_has_no_single_source_schedules():
    net = paper_nets.figure_4b()
    for source in ("a", "b"):
        result = find_schedule(net, source, options=SchedulerOptions(max_nodes=500))
        assert not result.success
    with pytest.raises(SchedulingFailure):
        find_schedule(net, "a", options=SchedulerOptions(max_nodes=500), raise_on_failure=True)


def test_figure_5_schedules_are_independent_and_executable():
    net = paper_nets.figure_5()
    results = find_all_schedules(net, raise_on_failure=True)
    schedules = {source: result.schedule for source, result in results.items()}
    assert is_independent_set(list(schedules.values()))
    assert are_mutually_independent(schedules["a"], schedules["d"])
    run = build_run(schedules, ["a", "d", "a", "a", "d"])
    assert run.final_marking == net.initial_marking
    assert check_executability(schedules, [["a", "d", "d", "a"], ["d", "a"]])


def test_figure_6_schedules_interfere():
    net = paper_nets.figure_6()
    results = find_all_schedules(net, raise_on_failure=True)
    schedules = {source: result.schedule for source, result in results.items()}
    for schedule in schedules.values():
        assert len(schedule.await_nodes()) == 2
    assert not is_independent_set(list(schedules.values()))
    violations = independence_report(list(schedules.values()))
    assert violations and violations[0].place in {"p0", "p2", "p4"}
    # the interleaving a d is not executable (the paper's example)
    with pytest.raises(RunError):
        build_run(schedules, ["a", "d", "a", "d"])


def test_figure_7_schedulable_with_irrelevance_but_not_small_bounds():
    for k in (3, 4):
        net = paper_nets.figure_7(k)
        result = find_schedule(net, "a", raise_on_failure=True)
        result.schedule.validate()
        # a fires k*(k-1)... at least k times: many await nodes
        assert len(result.schedule.await_nodes()) >= k
        bounded = CompositeCondition(
            conditions=[PlaceBoundCondition.uniform(net, 2), NodeBudget(max_nodes=2000)]
        )
        failed = find_schedule(net, "a", options=SchedulerOptions(termination=bounded))
        assert not failed.success


def test_figure_8_schedule_matches_paper_walkthrough():
    net = paper_nets.figure_8()
    result = find_schedule(net, "a", raise_on_failure=True)
    schedule = result.schedule
    schedule.validate()
    # Figure 10(d): seven nodes, two await nodes, involves every transition
    assert len(schedule) == 7
    assert len(schedule.await_nodes()) == 2
    assert schedule.involved_transitions() == {"a", "b", "c", "d", "e"}
    assert schedule.place_bounds()["p3"] == 2


def test_single_source_constraint_excludes_other_uncontrollables():
    net = paper_nets.figure_5()
    result = find_schedule(net, "a", raise_on_failure=True)
    assert "d" not in result.schedule.involved_transitions()
    relaxed = find_schedule(
        net, "a", options=SchedulerOptions(single_source=False), raise_on_failure=True
    )
    assert relaxed.success


def test_invariant_precheck_reports_unschedulable():
    net = PetriNet()
    net.add_place("p")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_arc("a", "p")  # tokens can never leave p: no invariant fires a
    result = find_schedule(net, "a")
    assert not result.success
    assert "T-invariant" in (result.failure_reason or "")


def test_find_schedule_unknown_transition():
    net = paper_nets.figure_5()
    with pytest.raises(KeyError):
        find_schedule(net, "nope")


def test_schedule_channel_bounds_on_flowc_system(divisors_system, divisors_schedule):
    schedule = divisors_schedule
    schedule.validate()
    assert schedule.is_single_source()
    assert len(schedule.await_nodes()) == 1
    bounds = schedule.channel_bounds()
    # every environment port place stays at one token (unit-size channels)
    assert all(bound <= 1 for bound in bounds.values())
    report = channel_size_report([schedule])
    assert set(report) == set(bounds)
    combined = combined_place_bounds([schedule])
    assert combined[divisors_system.port_place_of[("divisors", "in")]] <= 1


def test_false_path_example_unrolled_vs_conservative():
    unrolled = link_with_unrolling(build_false_path_network())
    result = find_schedule(unrolled.net, "src.prodA.start", raise_on_failure=True)
    assert result.schedule is not None
    assert result.schedule.channel_bounds()[unrolled.channel_places["c0"]] <= 1

    conservative = link_without_unrolling(build_false_path_network())
    failed = find_schedule(
        conservative.net, "src.prodA.start", options=SchedulerOptions(max_nodes=800)
    )
    assert not failed.success


def test_select_rewrite_compiles_and_is_not_unique_choice():
    from repro.flowc.linker import link
    from repro.petrinet.analysis import is_unique_choice_net

    system = link(build_select_rewrite_network())
    assert not is_unique_choice_net(system.net)
    assert "src.prodA.start" in system.net.uncontrollable_sources()


# ---------------------------------------------------------------------------
# Heuristics
# ---------------------------------------------------------------------------


def test_heuristic_orderings_agree_on_membership():
    net = paper_nets.figure_8()
    analysis = StructuralAnalysis.of(net)
    marking = net.fire("a", net.initial_marking)
    ecss = analysis.enabled_ecss(marking)
    context = HeuristicContext(marking=marking, path_firings={"a": 1}, depth=1)
    for heuristic in (
        NaiveOrdering(),
        TieBreakOrdering(analysis),
        make_heuristic(net, analysis, "a"),
    ):
        ordered = heuristic.order(ecss, context)
        assert sorted(map(sorted, ordered)) == sorted(map(sorted, ecss))


def test_tie_break_puts_sources_last():
    net = paper_nets.figure_8()
    analysis = StructuralAnalysis.of(net)
    marking = net.fire("a", net.initial_marking)
    ecss = analysis.enabled_ecss(marking)
    ordered = TieBreakOrdering(analysis).order(
        ecss, HeuristicContext(marking=marking, path_firings={}, depth=1)
    )
    assert ordered[-1] == frozenset({"a"})


def test_invariant_guided_ordering_prefers_promising_transitions():
    net = paper_nets.figure_8()
    analysis = StructuralAnalysis.of(net)
    heuristic = InvariantGuidedOrdering(net, analysis, "a")
    assert heuristic.source_is_coverable()
    vector = heuristic.promising_vector({})
    assert vector.get("a", 0) >= 1
    after_cycle = heuristic.promising_vector({"a": 1, "b": 1, "d": 1})
    assert after_cycle  # guidance never collapses to nothing


def test_scheduler_without_invariant_heuristic_still_works():
    net = paper_nets.figure_8()
    result = find_schedule(
        net, "a", options=SchedulerOptions(use_invariant_heuristic=False), raise_on_failure=True
    )
    assert result.schedule is not None
    result.schedule.validate()


# ---------------------------------------------------------------------------
# Runs
# ---------------------------------------------------------------------------


def test_build_run_tracks_positions_and_choices(divisors_system, divisors_schedule):
    schedules = {"src.divisors.in": divisors_schedule}
    run = build_run(schedules, ["src.divisors.in"] * 3, resolver=random_choice_resolver(1))
    assert len(run) == 3
    sequence = run.transition_sequence()
    assert sequence.count("src.divisors.in") == 3
    assert run.final_marking is not None


def test_build_run_errors():
    net = paper_nets.figure_5()
    results = find_all_schedules(net, raise_on_failure=True)
    schedules = {s: r.schedule for s, r in results.items()}
    with pytest.raises(RunError):
        build_run(schedules, ["unknown"])
    with pytest.raises(RunError):
        build_run({}, ["a"])
