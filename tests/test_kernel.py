"""The fused expansion kernel: tiers, fallback, incremental irrelevance.

Covers the contracts specific to :mod:`repro.petrinet.kernel` (the
scalar/batched/kernel *differential* harness lives in
``tests/test_batched_ep.py``):

* tier resolution -- ``REPRO_KERNEL=0`` and a missing/broken numba degrade
  to the NumPy reference tier with a once-per-process :class:`RuntimeWarning`
  and byte-identical schedules;
* :class:`IncrementalIrrelevance` -- bitwise identity against the exact
  ancestor-matrix broadcast on random inputs, the enumeration cap, and
  depth-*independence* of its op counters (the regression the incremental
  state exists for, asserted on counters rather than wall clock);
* the ``frontier_mask`` public extension point -- a user-defined maskable
  condition keeps the batched *and* kernel backends and agrees with its
  scalar ``holds``;
* :meth:`MarkingStore.intern_rows` -- the bulk admission step;
* golden parity -- kernel counters equal batched counters modulo the
  backend-only fields on every golden case, and all three backends
  reproduce the committed golden fixtures byte for byte.
"""

from __future__ import annotations

import warnings
from collections import Counter

import numpy as np
import pytest

from golden_nets import GOLDEN_CASES, derive_case, fixture_path, render_case
from repro.apps import paper_nets
from repro.apps.paper_nets import SourceKind
from repro.petrinet import kernel as kernel_mod
from repro.petrinet.analysis import place_degree
from repro.petrinet.batched import irrelevance_frontier_mask
from repro.petrinet.indexed import MarkingStore
from repro.petrinet.kernel import (
    IRRELEVANCE_ENUM_CAP,
    IncrementalIrrelevance,
    compiled_tier_available,
    kernel_enabled,
    reset_kernel_warning,
    resolve_kernel_tier,
)
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import (
    SchedulerOptions,
    SearchCounters,
    find_schedule,
    resolve_backend_for,
)
from repro.scheduling.serialize import schedule_fingerprint
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    NodeBudget,
    TerminationCondition,
    default_termination,
)

ALL_GOLDEN_CASES = [
    (net_name, source)
    for net_name, (_builder, sources) in sorted(GOLDEN_CASES.items())
    for source in sources
]


@pytest.fixture(autouse=True)
def _rearm_fallback_warning():
    """Each test observes the fallback warning as if the process were fresh."""
    reset_kernel_warning()
    yield
    reset_kernel_warning()


# ---------------------------------------------------------------------------
# tier resolution and the graceful fallback
# ---------------------------------------------------------------------------


def test_kernel_enabled_parses_the_env_knob(monkeypatch):
    for value in ("0", "false", "OFF", " no "):
        monkeypatch.setenv(kernel_mod.KERNEL_ENV, value)
        assert not kernel_enabled(), value
    for value in ("1", "true", "on", "anything"):
        monkeypatch.setenv(kernel_mod.KERNEL_ENV, value)
        assert kernel_enabled(), value
    monkeypatch.delenv(kernel_mod.KERNEL_ENV, raising=False)
    assert kernel_enabled()


def test_env_disable_degrades_to_numpy_with_one_warning(monkeypatch):
    monkeypatch.setenv(kernel_mod.KERNEL_ENV, "0")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_kernel_tier() == "numpy"
        assert resolve_kernel_tier() == "numpy"  # second resolve stays silent
    fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(fallback) == 1
    assert "compiled kernel tier unavailable" in str(fallback[0].message)
    assert "NumPy reference tier" in str(fallback[0].message)


def test_explicit_numpy_request_is_silent(monkeypatch):
    monkeypatch.setenv(kernel_mod.KERNEL_ENV, "0")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_kernel_tier("numpy") == "numpy"
    assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]


def test_warn_false_suppresses_the_fallback_warning(monkeypatch):
    monkeypatch.setenv(kernel_mod.KERNEL_ENV, "0")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_kernel_tier(warn=False) == "numpy"
    assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
    # the one-shot warning is still armed for the next warning resolve
    with pytest.warns(RuntimeWarning, match="compiled kernel tier unavailable"):
        resolve_kernel_tier()


def test_unknown_tier_request_raises():
    with pytest.raises(ValueError, match="unknown kernel tier"):
        resolve_kernel_tier("simd")


def test_resolution_matches_the_container():
    """Auto picks the compiled tier exactly when it is actually available."""
    tier = resolve_kernel_tier(warn=False)
    if compiled_tier_available() and kernel_enabled():
        assert tier == "compiled"
    else:
        assert tier == "numpy"


def test_explicit_compiled_request_degrades_when_unavailable(monkeypatch):
    monkeypatch.setenv(kernel_mod.KERNEL_ENV, "0")
    with pytest.warns(RuntimeWarning, match="compiled kernel tier unavailable"):
        assert resolve_kernel_tier("compiled") == "numpy"


def test_env_disabled_searches_stay_byte_identical(monkeypatch):
    """REPRO_KERNEL=0 changes the tier, never the schedule."""
    reference = find_schedule(
        paper_nets.figure_5(), "a", options=SchedulerOptions(backend="scalar")
    )
    monkeypatch.setenv(kernel_mod.KERNEL_ENV, "0")
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        degraded = find_schedule(
            paper_nets.figure_5(), "a", options=SchedulerOptions(backend="kernel")
        )
    assert degraded.success and reference.success
    assert schedule_fingerprint(degraded.schedule) == schedule_fingerprint(
        reference.schedule
    )
    assert degraded.counters.kernel_expansions > 0


def test_pinned_numpy_tier_matches_auto_tier_results():
    auto = find_schedule(
        paper_nets.figure_6(), "a", options=SchedulerOptions(backend="kernel")
    )
    pinned = find_schedule(
        paper_nets.figure_6(),
        "a",
        options=SchedulerOptions(backend="kernel", kernel_tier="numpy"),
    )
    assert schedule_fingerprint(auto.schedule) == schedule_fingerprint(pinned.schedule)
    assert auto.counters.as_dict() == pinned.counters.as_dict()


def test_options_cache_key_separates_tiers_not_backend_equivalence():
    from repro.scheduling.warmstart import options_cache_key

    scalar_key = options_cache_key(SchedulerOptions(backend="scalar"))
    batched_key = options_cache_key(SchedulerOptions(backend="batched"))
    auto_key = options_cache_key(SchedulerOptions())
    pinned_key = options_cache_key(SchedulerOptions(kernel_tier="numpy"))
    # scalar/batched searches never reach the kernel: no tier in their key
    assert scalar_key[-1] is None and batched_key[-1] is None
    # auto keys on the tier the process would actually run
    assert auto_key[-1] == resolve_kernel_tier(warn=False)
    assert pinned_key[-1] == "numpy"
    assert len({scalar_key, batched_key, auto_key}) == 3


# ---------------------------------------------------------------------------
# IncrementalIrrelevance: bitwise identity with the exact broadcast
# ---------------------------------------------------------------------------


def _random_path_inputs(n_children, depth, n_places, seed, high=4):
    """Random (children, ancestors, degrees) with planted irrelevant pairs."""
    rng = np.random.default_rng(seed)
    children = rng.integers(0, high, size=(n_children, n_places), dtype=np.int64)
    ancestors = rng.integers(0, high, size=(depth, n_places), dtype=np.int64)
    degrees = rng.integers(0, 3, size=n_places, dtype=np.int64)
    # plant guaranteed witnesses: child = ancestor + growth on a place the
    # ancestor already saturates
    for child in range(0, n_children, 5):
        ancestor = ancestors[child % depth]
        saturated = np.flatnonzero(ancestor >= degrees)
        if saturated.size:
            grown = ancestor.copy()
            grown[saturated[0]] += 1
            children[child] = grown
    return children, ancestors, degrees


def _path_state(ancestors):
    """The (marking index, token-total multiset) SchedulingTree maintains."""
    path_index = {tuple(map(int, row)): node for node, row in enumerate(ancestors)}
    total_counts = dict(Counter(int(row.sum()) for row in ancestors))
    return path_index, total_counts


@pytest.mark.parametrize("seed", range(8))
def test_incremental_check_is_bitwise_identical_to_the_broadcast(seed):
    children, ancestors, degrees = _random_path_inputs(40, 60, 9, seed)
    path_index, total_counts = _path_state(ancestors)
    expected = irrelevance_frontier_mask(children, ancestors, degrees)
    checker = IncrementalIrrelevance(degrees, cap=1 << 60)  # never capped
    for i, row in enumerate(children):
        vec = tuple(map(int, row))
        verdict = checker.check(vec, path_index, total_counts, sum(vec))
        assert verdict is not None
        assert verdict == bool(expected[i]), (seed, i)
    assert checker.capped_children == 0
    assert checker.children_checked == len(children)


@pytest.mark.parametrize("seed", range(4))
def test_default_cap_flags_exactly_the_capped_children(seed):
    """None verdicts appear iff the combination count exceeds the cap, and
    every decided child still agrees with the broadcast."""
    children, ancestors, degrees = _random_path_inputs(30, 40, 12, seed, high=9)
    path_index, total_counts = _path_state(ancestors)
    expected = irrelevance_frontier_mask(children, ancestors, degrees)
    checker = IncrementalIrrelevance(degrees)
    assert checker.cap == IRRELEVANCE_ENUM_CAP
    capped = 0
    for i, row in enumerate(children):
        vec = tuple(map(int, row))
        combos = 1
        for p, count in enumerate(vec):
            if count > degrees[p]:
                combos *= count - degrees[p] + 1
        verdict = checker.check(vec, path_index, total_counts, sum(vec))
        if combos > IRRELEVANCE_ENUM_CAP:
            assert verdict is None, (seed, i)
            capped += 1
        else:
            assert verdict == bool(expected[i]), (seed, i)
    assert checker.capped_children == capped
    assert capped > 0  # the high token range makes the cap bite somewhere


def test_child_without_over_degree_place_short_circuits():
    checker = IncrementalIrrelevance(degrees=(2, 2, 2))
    verdict = checker.check((1, 2, 0), {(0, 0, 0): 0}, {0: 1}, 3)
    assert verdict is False
    assert checker.stats() == {
        "children_checked": 1,
        "decided_by_degree_filter": 1,
        "candidates_probed": 0,
        "capped_children": 0,
    }


def test_equal_path_marking_is_not_a_witness():
    """Definition 4.5 requires A != C: a path marking equal to the child
    closes a cycle instead of pruning, so the identity candidate is skipped."""
    checker = IncrementalIrrelevance(degrees=(1,))
    vec = (3,)  # over degree: candidate span is {1, 2, 3}
    path_index, total_counts = _path_state(np.asarray([[3]], dtype=np.int64))
    assert checker.check(vec, path_index, total_counts, 3) is False
    # the broadcast agrees: cover & differs excludes the equal row
    mask = irrelevance_frontier_mask(
        np.asarray([vec], dtype=np.int64),
        np.asarray([[3]], dtype=np.int64),
        np.asarray([1], dtype=np.int64),
    )
    assert not mask[0]


def test_planted_witness_is_found():
    checker = IncrementalIrrelevance(degrees=(1, 0))
    # ancestor (1, 5) is saturated on both places; child grew the first
    path_index, total_counts = _path_state(np.asarray([[1, 5]], dtype=np.int64))
    assert checker.check((2, 5), path_index, total_counts, 7) is True


# ---------------------------------------------------------------------------
# depth-regression: per-child cost must not grow with the path depth
# ---------------------------------------------------------------------------


def test_op_counts_are_independent_of_path_depth():
    """The same frontier checked against a 500-deep path costs exactly the
    same ops as against a 50-deep path.

    This is the regression the incremental state exists for: the old
    per-node ancestor walk was O(depth), so deepening the path would have
    multiplied the op counts by ~10x here.  The extra 450 ancestors carry
    token totals no candidate can reach, which the total-multiset filter
    rejects without a single additional probe.
    """
    children, shallow, degrees = _random_path_inputs(40, 50, 9, seed=17)
    deep_tail = shallow[0] + 1000  # totals far above any candidate's
    deep = np.vstack([shallow, np.tile(deep_tail, (450, 1))])
    assert deep.shape[0] == 500

    stats = []
    for ancestors in (shallow, deep):
        path_index, total_counts = _path_state(ancestors)
        checker = IncrementalIrrelevance(degrees, cap=1 << 60)
        for row in children:
            vec = tuple(map(int, row))
            checker.check(vec, path_index, total_counts, sum(vec))
        stats.append(checker.stats())
    assert stats[0] == stats[1]
    assert stats[0]["children_checked"] == len(children)


def saturated_pipeline(stages: int) -> PetriNet:
    """A ``stages``-deep pipeline whose whole path is one token over-degree.

    ``src`` forks into two unit producers of ``join`` (degree 1, Definition
    4.4), so ``join`` holds 2 tokens -- over-degree by exactly one -- while
    the linear pipeline runs; two drains gated on the pipeline's tail
    restore the empty marking, keeping the net cyclically schedulable.
    Every child expanded along the deep path therefore reaches the
    incremental checker with a single-span candidate set.
    """
    net = PetriNet(name=f"satpipe{stages}")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    for place in ("p_a", "p_b", "join"):
        net.add_place(place)
    net.add_arc("src", "p_a")
    net.add_arc("src", "p_b")
    net.add_transition("a")
    net.add_arc("p_a", "a")
    net.add_arc("a", "join")
    net.add_transition("b")
    net.add_arc("p_b", "b")
    net.add_arc("b", "join")
    net.add_place("q0")
    net.add_arc("b", "q0")
    previous = "q0"
    for stage in range(1, stages + 1):
        transition, place = f"s{stage}", f"q{stage}"
        net.add_transition(transition)
        net.add_place(place)
        net.add_arc(previous, transition)
        net.add_arc(transition, place)
        previous = place
    net.add_transition("d1")
    net.add_place("qd1")
    net.add_arc("join", "d1")
    net.add_arc(previous, "d1")
    net.add_arc("d1", "qd1")
    net.add_transition("d2")
    net.add_place("qd2")
    net.add_arc("join", "d2")
    net.add_arc("qd1", "d2")
    net.add_arc("d2", "qd2")
    net.add_transition("sink")
    net.add_arc("qd2", "sink")
    return net


def _deep_search(backend: str, stages: int = 500):
    """One deep-path search with an inspectable criterion instance."""
    net = saturated_pipeline(stages)
    criterion = IrrelevanceCriterion.for_net(net)
    termination = CompositeCondition(
        conditions=[criterion, NodeBudget(max_nodes=200_000)]
    )
    options = SchedulerOptions(
        backend=backend, termination=termination, use_invariant_heuristic=False
    )
    result = find_schedule(net, "src", options=options)
    return result, criterion


def test_depth_500_search_stays_within_constant_per_child_ops():
    """The whole 500-deep search runs on O(1) irrelevance ops per child.

    Asserted on the checker's op counters, not wall clock: every child
    carries exactly one over-degree place one token over its degree
    (``join``), so the candidate set has at most one non-identity member --
    at most one hash probe per child, never the enumeration cap, never the
    O(depth) ancestor-matrix fallback.  Under the old per-node walk this
    search performed ~depth/2 ancestor comparisons per child (~125,000
    total); the probe bound pins the new cost at <= 1 per child.
    """
    net = saturated_pipeline(500)
    assert place_degree(net, "join") == 1

    result, criterion = _deep_search("kernel")
    assert result.success
    stats = criterion._incremental.stats()
    assert stats["children_checked"] >= 500
    assert stats["capped_children"] == 0
    assert stats["candidates_probed"] <= stats["children_checked"]


def test_deep_search_is_backend_identical_with_identical_op_profile():
    kernel_result, _ = _deep_search("kernel", stages=120)
    scalar_result, scalar_criterion = _deep_search("scalar", stages=120)
    batched_result, _ = _deep_search("batched", stages=120)
    fingerprints = {
        schedule_fingerprint(result.schedule)
        for result in (kernel_result, scalar_result, batched_result)
    }
    assert len(fingerprints) == 1
    # the scalar fast path ran on the same incremental state (shared via
    # IrrelevanceCriterion.incremental_for), not the O(depth) walk
    scalar_stats = scalar_criterion._incremental.stats()
    assert scalar_stats["children_checked"] > 0
    assert scalar_stats["capped_children"] == 0


# ---------------------------------------------------------------------------
# the frontier_mask public extension point
# ---------------------------------------------------------------------------


class TokenCeilingCondition(TerminationCondition):
    """Example user condition: prune when the total token count exceeds a
    ceiling.  Implements the documented extension-point pair, so searches
    using it keep the batched/kernel backends."""

    name = "token-ceiling"
    supports_frontier_mask = True

    def __init__(self, ceiling: int):
        self.ceiling = ceiling
        self.mask_calls = 0

    def holds(self, tree, node) -> bool:
        vec_of = getattr(tree, "vec_of", None)
        if vec_of is not None:
            return sum(vec_of(node)) > self.ceiling
        return sum(tree.marking_of(node).values()) > self.ceiling

    def frontier_mask(self, inet, ancestors, children, child_depth):
        self.mask_calls += 1
        return children.sum(axis=1) > self.ceiling


def _ceiling_options(net, backend, ceiling):
    termination = default_termination(net, extra=[TokenCeilingCondition(ceiling)])
    return SchedulerOptions(backend=backend, termination=termination)


@pytest.mark.parametrize("backend", ["batched", "kernel"])
def test_user_maskable_condition_keeps_the_matrix_backends(backend):
    net = paper_nets.figure_7(3)
    options = _ceiling_options(net, backend, ceiling=6)
    assert resolve_backend_for(net, options) == backend


@pytest.mark.parametrize("ceiling", [3, 5, 8])
def test_user_maskable_condition_agrees_across_all_backends(ceiling):
    results = {}
    masked = {}
    for backend in ("scalar", "batched", "kernel"):
        net = paper_nets.figure_7(3)
        termination = default_termination(
            net, extra=[condition := TokenCeilingCondition(ceiling)]
        )
        results[backend] = find_schedule(
            net,
            "a",
            options=SchedulerOptions(backend=backend, termination=termination),
        )
        masked[backend] = condition.mask_calls
    assert (
        results["scalar"].success
        == results["batched"].success
        == results["kernel"].success
    )
    if results["scalar"].success:
        fingerprints = {
            schedule_fingerprint(result.schedule) for result in results.values()
        }
        assert len(fingerprints) == 1
    # the condition really went through the frontier_mask protocol on both
    # matrix backends (the kernel folds it via its `extra` route)
    assert masked["batched"] > 0 and masked["kernel"] > 0
    assert masked["scalar"] == 0
    assert results["kernel"].counters.kernel_expansions > 0


def test_non_maskable_condition_still_forces_scalar():
    class OpaqueCondition(TerminationCondition):
        def holds(self, tree, node):
            return False

    net = paper_nets.figure_5()
    termination = default_termination(net, extra=[OpaqueCondition()])
    options = SchedulerOptions(backend="kernel", termination=termination)
    assert resolve_backend_for(net, options) == "scalar"


# ---------------------------------------------------------------------------
# MarkingStore.intern_rows: the bulk admission step
# ---------------------------------------------------------------------------


def test_intern_rows_is_canonical_with_scalar_interning():
    store = MarkingStore()
    single = store.intern((1, 2, 3))
    matrix = np.asarray([[1, 2, 3], [4, 5, 6], [1, 2, 3]], dtype=np.int64)
    rows = store.intern_rows(matrix)
    assert rows[0] is single  # same canonical object as the scalar intern
    assert rows[2] is rows[0]  # duplicates collapse within one call
    assert store.intern((4, 5, 6)) is rows[1]
    assert len(store) == 2
    assert rows == [(1, 2, 3), (4, 5, 6), (1, 2, 3)]


def test_intern_rows_handles_the_empty_frontier():
    store = MarkingStore()
    assert store.intern_rows(np.zeros((0, 3), dtype=np.int64)) == []
    assert len(store) == 0


# ---------------------------------------------------------------------------
# golden parity: counters and fixture bytes across the three backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("net_name,source", ALL_GOLDEN_CASES)
def test_kernel_counters_match_batched_modulo_backend_only(net_name, source):
    """Same search, same accounting: only the backend-only counters differ,
    and the kernel counts exactly the expansions the batched path counts."""
    builder, _sources = GOLDEN_CASES[net_name]
    batched = find_schedule(
        builder(), source, options=SchedulerOptions(backend="batched")
    )
    kernel = find_schedule(
        builder(), source, options=SchedulerOptions(backend="kernel")
    )
    batched_counts = batched.counters.as_dict()
    kernel_counts = kernel.counters.as_dict()
    for field in SearchCounters.BACKEND_ONLY:
        batched_counts.pop(field)
        kernel_counts.pop(field)
    assert kernel_counts == batched_counts
    assert (
        kernel.counters.kernel_expansions == batched.counters.batched_expansions
    )
    assert kernel.counters.batched_expansions == 0


@pytest.mark.parametrize("backend", ["scalar", "batched", "kernel"])
@pytest.mark.parametrize("net_name,source", ALL_GOLDEN_CASES)
def test_every_backend_reproduces_the_golden_fixture_bytes(
    net_name, source, backend
):
    """The committed fixtures are backend-free: each backend re-derives the
    exact bytes on disk (the byte-identical-schedule contract, end to end)."""
    regenerated = render_case(derive_case(net_name, source, backend=backend))
    assert regenerated == fixture_path(net_name, source).read_text()
