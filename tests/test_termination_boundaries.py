"""Boundary semantics of depth/budget termination across the backends.

The scalar backend evaluates ``MaxDepthCondition.holds`` on each node (its
depth equals its proper-ancestor count); the matrix backends (batched and
the fused kernel) evaluate ``frontier_mask`` -- or the kernel's folded
equivalent -- with ``child_depth`` (parent depth + 1) for a whole frontier
at once.  All must implement ``depth > max_depth`` -- a node *at*
``max_depth`` is kept, its children are pruned -- and therefore terminate on
the identical node set.  These tests pin that contract at the boundary
values ``max_depth - 1`` / ``max_depth`` / ``max_depth + 1`` around the
minimal schedulable depth, differentially across ``backend="scalar"``,
``"batched"`` and ``"kernel"``, so any future off-by-one in any path trips
immediately.
"""

from __future__ import annotations

import random

import pytest

from repro.apps import paper_nets
from repro.apps.workloads import random_marked_graph, random_multi_source_net
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.serialize import schedule_to_json
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    MaxDepthCondition,
    NodeBudget,
)


def _run(net, source, max_depth, backend, max_nodes=5000):
    termination = CompositeCondition(
        [
            IrrelevanceCriterion.for_net(net),
            MaxDepthCondition(max_depth),
            NodeBudget(max_nodes=max_nodes),
        ]
    )
    return find_schedule(
        net,
        source,
        options=SchedulerOptions(
            termination=termination, backend=backend, max_nodes=max_nodes
        ),
    )


def _observables(result):
    counters = result.counters.as_dict()
    for key in result.counters.BACKEND_ONLY:
        counters.pop(key)
    return (
        result.success,
        result.tree_nodes,
        counters,
        schedule_to_json(result.schedule)
        if result.schedule is not None
        else result.failure_reason,
    )


#: Every EP backend; the matrix backends must agree with scalar everywhere.
BACKENDS = ("scalar", "batched", "kernel")

#: (builder, source, minimal max_depth at which a schedule exists) -- the
#: minimal depths are behavioural pins of the figure nets themselves.
MINIMAL_DEPTHS = [
    (paper_nets.figure_5, "a", 3),
    (paper_nets.figure_6, "a", 5),
]


@pytest.mark.parametrize(
    "builder,source,minimal", MINIMAL_DEPTHS, ids=["figure_5", "figure_6"]
)
def test_minimal_depth_is_a_sharp_boundary(builder, source, minimal):
    """depth == minimal schedules; minimal - 1 fails -- on every backend."""
    for backend in BACKENDS:
        below = _run(builder(), source, minimal - 1, backend)
        assert not below.success, backend
        at = _run(builder(), source, minimal, backend)
        assert at.success, backend
        above = _run(builder(), source, minimal + 1, backend)
        assert above.success, backend
        # the depth-(minimal) and depth-(minimal+1) schedules agree: the
        # extra slack changes nothing once an entering point exists
        assert schedule_to_json(at.schedule) == schedule_to_json(above.schedule)


@pytest.mark.parametrize(
    "builder,source,minimal", MINIMAL_DEPTHS, ids=["figure_5", "figure_6"]
)
def test_backends_agree_at_every_boundary_value(builder, source, minimal):
    for max_depth in (minimal - 1, minimal, minimal + 1):
        scalar = _observables(_run(builder(), source, max_depth, "scalar"))
        for backend in BACKENDS[1:]:
            other = _observables(_run(builder(), source, max_depth, backend))
            assert scalar == other, f"max_depth={max_depth} backend={backend}"


def test_backends_agree_across_depth_sweep_on_random_nets():
    """Wider differential sweep: generated nets, every small depth bound."""
    for seed in range(6):
        rng = random.Random(seed)
        nets = [
            ("multi", random_multi_source_net(2, 3, rng=random.Random(seed))),
            ("marked", random_marked_graph(4, rng=random.Random(seed))),
        ]
        for _label, net in nets:
            sources = net.uncontrollable_sources()
            if not sources:
                continue
            source = sources[rng.randrange(len(sources))]
            for max_depth in range(0, 12):
                scalar = _observables(_run(net, source, max_depth, "scalar"))
                for backend in BACKENDS[1:]:
                    other = _observables(_run(net, source, max_depth, backend))
                    assert scalar == other, (seed, source, max_depth, backend)


def test_max_depth_holds_uses_the_stored_depth_fast_path():
    """MaxDepthCondition.holds agrees with the O(depth) ancestor count."""
    from repro.scheduling.ep import SchedulingTree

    net = paper_nets.figure_5()
    tree = SchedulingTree(net)
    inet = tree.inet
    root = tree.add_root(inet.initial_vec)
    tid = inet.transition_index["a"]
    child = tree.add_child(root, tid, inet.fire_vec(tid, inet.initial_vec))
    assert tree.depth_of(root) == 0 and tree.depth_of(child) == 1
    for max_depth in (0, 1, 2):
        condition = MaxDepthCondition(max_depth)
        for node in (root, child):
            slow = sum(1 for _ in tree.ancestors_of(node)) > max_depth
            assert condition.holds(tree, node) == slow


def test_node_budget_boundary_is_on_the_node_index():
    """NodeBudget prunes node index >= max_nodes, exactly, on every backend."""
    for backend in BACKENDS:
        net = paper_nets.figure_5()
        termination = CompositeCondition(
            [IrrelevanceCriterion.for_net(net), NodeBudget(max_nodes=2)]
        )
        result = find_schedule(
            net,
            "a",
            options=SchedulerOptions(termination=termination, backend=backend),
        )
        assert not result.success, backend
        # root (0) and the source child (1) exist; the budget stops index 2
        assert result.tree_nodes >= 2, backend
