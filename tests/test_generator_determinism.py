"""Same seed => byte-identical generated systems, across process boundaries.

The generators' determinism contract (explicit ``random.Random``, no
dict/set-iteration-order or ``PYTHONHASHSEED`` dependence) is pinned the
only way that actually proves it: two *fresh subprocesses* with different
hash seeds must print identical digests for every registered workload
generator and for the corpus generator's emitted programs and stimuli.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.apps.workloads import GENERATORS, generator_digest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_DIGEST_SCRIPT = """
import hashlib, json
from repro.apps.workloads import GENERATORS, generator_digest
from repro.corpus.generator import generate_corpus
from repro.corpus.topologies import emit_program, stimulus_for, spec_to_dict

lines = []
for name in sorted(GENERATORS):
    for seed in range(4):
        lines.append(f"{name}/{seed}: {generator_digest(name, seed)}")
for spec in generate_corpus(7, seed=11):
    program = hashlib.sha256(emit_program(spec).encode()).hexdigest()
    payload = json.dumps(
        {"spec": spec_to_dict(spec), "stimulus": stimulus_for(spec)},
        sort_keys=True,
    )
    lines.append(f"{spec.label()}: {program} {hashlib.sha256(payload.encode()).hexdigest()}")
print("\\n".join(lines))
"""


def _run_with_hash_seed(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = REPO_SRC
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_same_seed_is_byte_identical_across_processes():
    first = _run_with_hash_seed("1")
    second = _run_with_hash_seed("271828")
    assert first == second
    # sanity: the transcript actually covered every registered generator
    for name in GENERATORS:
        assert f"{name}/0:" in first


def test_registry_digests_are_stable_in_process():
    for name in GENERATORS:
        assert generator_digest(name, 3) == generator_digest(name, 3)


def test_different_seeds_differ():
    assert generator_digest("marked_graph", 0) != generator_digest("marked_graph", 1)


def test_unknown_generator_rejected():
    import pytest

    with pytest.raises(KeyError):
        generator_digest("nope", 0)
