"""Registry of the golden-schedule nets and the fixture (re)generator.

Each golden case pins the full canonical schedule (plus its summary shape:
node count, await count, channel bounds) for one (net, source) pair under
default scheduler options.  The EP search is deterministic, so any diff
against these fixtures is a behavioural change of the scheduler and must be
either a bug or an intentional, reviewed regeneration.

Regenerate after an *intentional* scheduler change with:

    PYTHONPATH=src python tests/golden_nets.py

The test suite (``tests/test_golden_schedules.py``) re-derives every case
and diffs it against the stored JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import paper_nets
from repro.apps.video import VideoAppConfig, build_video_system
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.serialize import (
    schedule_fingerprint,
    schedule_summary,
    schedule_to_dict,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _pfc_4x5() -> PetriNet:
    return build_video_system(VideoAppConfig(lines_per_frame=4, pixels_per_line=5)).net


#: net name -> (builder, sources to schedule).  figure_4b is pinned as a
#: *failure* fixture: it must keep having no single-source schedule.
GOLDEN_CASES: Dict[str, Tuple[Callable[[], PetriNet], List[str]]] = {
    "figure_4a": (paper_nets.figure_4a, ["a", "b"]),
    "figure_4b": (paper_nets.figure_4b, ["a", "b"]),
    "figure_5": (paper_nets.figure_5, ["a", "d"]),
    "figure_6": (paper_nets.figure_6, ["a", "d"]),
    "figure_7_k3": (lambda: paper_nets.figure_7(3), ["a"]),
    "figure_8": (paper_nets.figure_8, ["a"]),
    "pfc_4x5": (_pfc_4x5, ["src.controller.init"]),
}


def fixture_path(net_name: str, source: str) -> Path:
    return GOLDEN_DIR / f"{net_name}__{source}.json"


def derive_case(
    net_name: str, source: str, backend: Optional[str] = None
) -> Dict[str, object]:
    """Run the (serial) search and package the golden record.

    ``backend`` pins an EP backend; the default (auto) is what fixture
    regeneration uses.  The record carries no backend information, so the
    backends' byte-identical-schedule contract means every choice must
    reproduce the committed fixture bytes exactly
    (``tests/test_kernel.py`` sweeps all of them).
    """
    builder, _sources = GOLDEN_CASES[net_name]
    net = builder()
    options = SchedulerOptions(backend=backend) if backend else None
    result = find_schedule(net, source, options=options)
    record: Dict[str, object] = {
        "net": net_name,
        "source": source,
        "success": result.success,
        "summary": schedule_summary(result.schedule),
    }
    if result.schedule is not None:
        record["schedule"] = schedule_to_dict(result.schedule)
        record["fingerprint"] = schedule_fingerprint(result.schedule)
    else:
        record["failure_reason"] = result.failure_reason
    return record


def render_case(record: Dict[str, object]) -> str:
    """The exact fixture bytes for a record (the byte-level sync contract)."""
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


def regenerate() -> List[Path]:
    GOLDEN_DIR.mkdir(exist_ok=True)
    written: List[Path] = []
    for net_name, (_builder, sources) in sorted(GOLDEN_CASES.items()):
        for source in sources:
            record = derive_case(net_name, source)
            path = fixture_path(net_name, source)
            path.write_text(render_case(record))
            written.append(path)
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"wrote {path}")
