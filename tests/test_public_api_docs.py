"""The documentation contract of the public API surface.

A pydocstyle-lite enforced by an explicit symbol list: every public symbol
below must carry a substantive docstring, every public method / property of
the listed classes must be documented (inherited docstrings count -- an
override of a documented base method is fine), and the designated entry
points must include a short usage example.  Growing the public API means
growing this list.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

#: (module, symbol) pairs forming the supported public API surface.
PUBLIC_API = [
    # scheduling entry points
    ("repro.scheduling.ep", "find_schedule"),
    ("repro.scheduling.ep", "find_all_schedules"),
    ("repro.scheduling.ep", "resolve_backend_for"),
    ("repro.scheduling.ep", "SchedulerOptions"),
    ("repro.scheduling.ep", "SchedulerResult"),
    ("repro.scheduling.ep", "SearchCounters"),
    ("repro.scheduling.ep", "SchedulingFailure"),
    # canonical serialization
    ("repro.scheduling.serialize", "schedule_to_dict"),
    ("repro.scheduling.serialize", "schedule_from_dict"),
    ("repro.scheduling.serialize", "schedule_to_json"),
    ("repro.scheduling.serialize", "schedule_fingerprint"),
    ("repro.scheduling.serialize", "result_to_record"),
    ("repro.scheduling.serialize", "result_from_record"),
    ("repro.scheduling.serialize", "schedule_summary"),
    # schedules and the net facade
    ("repro.scheduling.schedule", "Schedule"),
    ("repro.petrinet.net", "PetriNet"),
    ("repro.petrinet.net", "Place"),
    ("repro.petrinet.net", "Transition"),
    ("repro.petrinet.marking", "Marking"),
    ("repro.petrinet.fingerprint", "structural_fingerprint"),
    ("repro.petrinet.fingerprint", "incidence_fingerprint"),
    ("repro.petrinet.invariants", "t_invariant_basis"),
    # termination conditions
    ("repro.scheduling.termination", "TerminationCondition"),
    ("repro.scheduling.termination", "IrrelevanceCriterion"),
    ("repro.scheduling.termination", "PlaceBoundCondition"),
    ("repro.scheduling.termination", "UserBoundCondition"),
    ("repro.scheduling.termination", "NodeBudget"),
    ("repro.scheduling.termination", "MaxDepthCondition"),
    ("repro.scheduling.termination", "CompositeCondition"),
    ("repro.scheduling.termination", "default_termination"),
    # the fused expansion kernel
    ("repro.petrinet.kernel", "ExpansionKernel"),
    ("repro.petrinet.kernel", "IncrementalIrrelevance"),
    ("repro.petrinet.kernel", "resolve_kernel_tier"),
    ("repro.petrinet.kernel", "compiled_tier_available"),
    ("repro.petrinet.kernel", "kernel_enabled"),
    ("repro.petrinet.indexed", "MarkingStore"),
    # parallel + warm start + persistent cache
    ("repro.scheduling.parallel", "find_all_schedules_parallel"),
    ("repro.scheduling.parallel", "aggregate_counters"),
    ("repro.scheduling.warmstart", "ScheduleWarmStartCache"),
    ("repro.scheduling.warmstart", "cached_find_schedule"),
    ("repro.scheduling.warmstart", "options_cache_key"),
    ("repro.cache", "CacheStore"),
    ("repro.cache", "SqliteStore"),
    ("repro.cache", "JsonDirStore"),
    ("repro.cache", "NullStore"),
    ("repro.cache", "open_store"),
    ("repro.cache", "activate"),
    ("repro.cache", "deactivate"),
    ("repro.cache", "active_store"),
    ("repro.cache", "load_schedule_record"),
    ("repro.cache", "store_schedule_record"),
    ("repro.cache.cli", "main"),
    # the scheduling daemon
    ("repro.serve", "SchedulingService"),
    ("repro.serve", "ScheduleServer"),
    ("repro.serve", "start_server"),
    ("repro.serve", "ServeMetrics"),
    ("repro.serve", "LatencyHistogram"),
    ("repro.serve", "ProtocolError"),
    ("repro.serve", "net_to_dict"),
    ("repro.serve", "net_from_dict"),
    ("repro.serve", "options_from_dict"),
    ("repro.serve.__main__", "main"),
    # experiments facade
    ("repro.experiments.common", "build_pfc_setup"),
]

#: Entry points whose docstring must include a usage example.
MUST_HAVE_EXAMPLE = {
    ("repro.scheduling.ep", "find_schedule"),
    ("repro.scheduling.ep", "find_all_schedules"),
    ("repro.scheduling.ep", "SchedulerOptions"),
    ("repro.scheduling.warmstart", "ScheduleWarmStartCache"),
    ("repro.cache", None),  # the package docstring itself
    ("repro.serve", None),  # the package docstring itself
    ("repro.serve.server", "start_server"),
    ("repro.serve.service", "SchedulingService"),
}


def _resolve(module_name: str, symbol: str):
    module = importlib.import_module(module_name)
    assert hasattr(module, symbol), f"{module_name}.{symbol} disappeared"
    return getattr(module, symbol)


@pytest.mark.parametrize("module_name,symbol", PUBLIC_API)
def test_public_symbol_has_docstring(module_name, symbol):
    obj = _resolve(module_name, symbol)
    doc = inspect.getdoc(obj) or ""
    assert len(doc.strip()) >= 20, f"{module_name}.{symbol} needs a substantive docstring"


@pytest.mark.parametrize(
    "module_name,symbol",
    [(m, s) for m, s in PUBLIC_API if inspect.isclass(_resolve(m, s))],
)
def test_public_class_methods_are_documented(module_name, symbol):
    cls = _resolve(module_name, symbol)
    undocumented = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if not (
            inspect.isfunction(member)
            or inspect.ismethod(member)
            or isinstance(member, property)
        ):
            continue
        target = member.fget if isinstance(member, property) else member
        if not (inspect.getdoc(target) or "").strip():
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}.{symbol} has undocumented public members: {undocumented}"
    )


@pytest.mark.parametrize("module_name,symbol", sorted(m for m in MUST_HAVE_EXAMPLE))
def test_entry_points_show_an_example(module_name, symbol):
    if symbol is None:
        obj = importlib.import_module(module_name)
    else:
        obj = _resolve(module_name, symbol)
    doc = inspect.getdoc(obj) or ""
    assert ">>>" in doc or "Example" in doc, (
        f"{module_name}.{symbol or '(module)'} docstring needs a short example"
    )


def test_module_docstrings_exist():
    """Every package module a user might read first explains itself."""
    for module_name in [
        "repro.cache",
        "repro.cache.stores",
        "repro.cache.cli",
        "repro.serve",
        "repro.serve.protocol",
        "repro.serve.service",
        "repro.serve.server",
        "repro.scheduling.ep",
        "repro.scheduling.warmstart",
        "repro.scheduling.parallel",
        "repro.scheduling.serialize",
        "repro.scheduling.termination",
        "repro.petrinet.net",
        "repro.petrinet.invariants",
        "repro.petrinet.fingerprint",
        "repro.experiments.common",
    ]:
        module = importlib.import_module(module_name)
        assert len((module.__doc__ or "").strip()) >= 40, f"{module_name} needs a module docstring"
