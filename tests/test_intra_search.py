"""Worker-count determinism matrix for intra-search work stealing.

The :mod:`repro.scheduling.intra` contract is that ``intra_workers`` is
observationally a no-op: for every worker count the canonical schedule, its
fingerprint, the tree shape and the merged :class:`SearchCounters` (modulo
the ``BACKEND_ONLY`` expansion tallies, exactly as between backends) are
byte-identical to the serial search -- under any steal interleaving, and
with workers raising or dying mid-subtree.

The golden nets and the corpus never backtrack (the invariant heuristic's
first candidate always wins, so speculative subtree results are only ever
discarded); :func:`make_backtracking_net` is the adversarial complement: a
net whose heuristically-first ECS is a drain-first *trap* that dead-ends,
forcing the serial order to actually consume the stolen second-candidate
subtrees -- the splice, inline-fallback and fault paths all run for real.

This matrix runs (and passes) on a single-core host -- identity does not
need real parallelism.  The CI leg that exercises it with true concurrency
is the ``worker-matrix`` job on a multi-core runner (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import itertools
import random
import warnings

import pytest

from golden_nets import GOLDEN_CASES
from repro.corpus.generator import generate_corpus
from repro.corpus.topologies import build_case
from repro.flowc.linker import link
from repro.petrinet.net import PetriNet, SourceKind
from repro.scheduling import intra
from repro.scheduling.ep import (
    SchedulerOptions,
    SearchCounters,
    find_all_schedules,
    find_schedule,
)
from repro.scheduling.serialize import schedule_fingerprint, schedule_to_json
from repro.scheduling.warmstart import options_cache_key

WORKER_MATRIX = (1, 2, 4, 8)

#: the 50-seed corpus the sample is drawn from (generation is prefix-stable,
#: so these specs are the same ones every other corpus consumer sees)
CORPUS_SIZE = 50
CORPUS_SEED = 20260808
#: deterministic sample strides: every 5th spec runs at workers {1, 2},
#: every 12th additionally at {4, 8} (full nets x full matrix is CI-leg /
#: slow-mark territory, not tier-1)
SAMPLE_STRIDE = 5
DEEP_SAMPLE_STRIDE = 12


def result_identity(result):
    """Everything that must be byte-identical across worker counts."""
    counters = {
        key: value
        for key, value in result.counters.as_dict().items()
        if key not in SearchCounters.BACKEND_ONLY
    }
    return (
        schedule_to_json(result.schedule) if result.schedule else None,
        schedule_fingerprint(result.schedule) if result.schedule else None,
        result.tree_nodes,
        result.failure_reason,
        counters,
    )


def make_backtracking_net(stages: int = 2, trap_depth: int = 4) -> PetriNet:
    """A net whose heuristically-first ECS always dead-ends.

    Per stage, the source tokens ``pA``/``pB`` enable two ECSs: ``t_trap``
    consumes both and produces one (token delta -1, so the drain-first
    tie-break orders it *first*), walks a ``trap_depth`` chain and hands the
    tokens straight back -- its only entering point is the forking node
    itself, which EP rejects, so the trap subtree fails after being fully
    explored.  ``u_route``/``v_join`` is the real route and chains into the
    next stage.  The trap cycle is covered by a T-invariant, so the
    irrelevance criterion cannot prune it early.
    """
    net = PetriNet(name=f"backtrack_{stages}x{trap_depth}")
    for i in range(stages):
        for place in (f"pA{i}", f"pB{i}", f"pW{i}"):
            net.add_place(place)
        for d in range(trap_depth):
            net.add_place(f"pT{i}_{d}")
    for i in range(stages):
        net.add_transition(f"t_trap{i}")
        net.add_arc(f"pA{i}", f"t_trap{i}")
        net.add_arc(f"pB{i}", f"t_trap{i}")
        net.add_arc(f"t_trap{i}", f"pT{i}_0")
        for d in range(trap_depth - 1):
            net.add_transition(f"t_step{i}_{d}")
            net.add_arc(f"pT{i}_{d}", f"t_step{i}_{d}")
            net.add_arc(f"t_step{i}_{d}", f"pT{i}_{d+1}")
        net.add_transition(f"t_back{i}")
        net.add_arc(f"pT{i}_{trap_depth-1}", f"t_back{i}")
        net.add_arc(f"t_back{i}", f"pA{i}")
        net.add_arc(f"t_back{i}", f"pB{i}")
        net.add_transition(f"u_route{i}")
        net.add_arc(f"pA{i}", f"u_route{i}")
        net.add_arc(f"u_route{i}", f"pW{i}")
        net.add_transition(f"v_join{i}")
        net.add_arc(f"pW{i}", f"v_join{i}")
        net.add_arc(f"pB{i}", f"v_join{i}")
        if i + 1 < stages:
            net.add_arc(f"v_join{i}", f"pA{i+1}")
            net.add_arc(f"v_join{i}", f"pB{i+1}")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_arc("src", "pA0")
    net.add_arc("src", "pB0")
    return net


@pytest.fixture(autouse=True, scope="module")
def _shutdown_pools_after_module():
    yield
    intra.shutdown_pools()


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    intra._publish_order_hook = None
    intra._fault_hook = None


# ---------------------------------------------------------------------------
# golden-net matrix
# ---------------------------------------------------------------------------


def _golden_params():
    return [
        pytest.param(net_name, source, id=f"{net_name}-{source}")
        for net_name, (_builder, sources) in sorted(GOLDEN_CASES.items())
        for source in sources
    ]


class TestGoldenMatrix:
    @pytest.mark.parametrize(("net_name", "source"), _golden_params())
    def test_worker_counts_are_byte_identical(self, net_name, source):
        builder, _sources = GOLDEN_CASES[net_name]
        net = builder()
        baseline = result_identity(
            find_schedule(net, source, options=SchedulerOptions())
        )
        for workers in WORKER_MATRIX[1:]:
            result = find_schedule(
                net, source, options=SchedulerOptions(intra_workers=workers)
            )
            assert result_identity(result) == baseline, (
                f"intra_workers={workers} diverged on {net_name}/{source}"
            )
            assert result.intra_stats is not None
            assert result.intra_stats["workers"] == workers

    def test_serial_path_records_no_intra_stats(self):
        builder, sources = GOLDEN_CASES["figure_5"]
        result = find_schedule(builder(), sources[0], options=SchedulerOptions())
        assert result.intra_stats is None


# ---------------------------------------------------------------------------
# corpus sample
# ---------------------------------------------------------------------------


def _corpus_sample(stride):
    specs = generate_corpus(CORPUS_SIZE, seed=CORPUS_SEED)
    return [
        pytest.param(index, id=f"seed{CORPUS_SEED}-{index}-{specs[index].family}")
        for index in range(0, CORPUS_SIZE, stride)
    ]


def _corpus_net(index):
    spec = generate_corpus(CORPUS_SIZE, seed=CORPUS_SEED)[index]
    case = build_case(spec)
    return link(case.network).net, case.manifest["source_transitions"]


class TestCorpusSample:
    @pytest.mark.parametrize("index", _corpus_sample(SAMPLE_STRIDE))
    def test_two_workers_identical(self, index):
        net, sources = _corpus_net(index)
        for source in sources:
            baseline = result_identity(
                find_schedule(net, source, options=SchedulerOptions())
            )
            result = find_schedule(
                net, source, options=SchedulerOptions(intra_workers=2)
            )
            assert result_identity(result) == baseline

    @pytest.mark.parametrize("index", _corpus_sample(DEEP_SAMPLE_STRIDE))
    @pytest.mark.parametrize("workers", (4, 8))
    def test_deep_matrix_identical(self, index, workers):
        net, sources = _corpus_net(index)
        for source in sources:
            baseline = result_identity(
                find_schedule(net, source, options=SchedulerOptions())
            )
            result = find_schedule(
                net, source, options=SchedulerOptions(intra_workers=workers)
            )
            assert result_identity(result) == baseline


# ---------------------------------------------------------------------------
# backtracking: stolen subtrees are actually consumed
# ---------------------------------------------------------------------------


class TestBacktrackingConsumption:
    def test_matrix_on_backtracking_net(self):
        net = make_backtracking_net(stages=2, trap_depth=4)
        baseline = find_schedule(net, "src", options=SchedulerOptions())
        assert baseline.success
        for workers in WORKER_MATRIX[1:]:
            result = find_schedule(
                net, "src", options=SchedulerOptions(intra_workers=workers)
            )
            assert result_identity(result) == result_identity(baseline)
            stats = result.intra_stats
            assert stats["published"] > 0
            # the trap forces the serial order past its first candidate, so
            # at least one speculative subtree is resolved (stolen by a
            # worker, run detached by the parent, or recomputed inline --
            # which bucket depends on timing; that any is used does not)
            consumed = (
                stats["stolen_by_workers"]
                + stats["parent_detached"]
                + stats["inline"]
                + stats["invalid_splice"]
            )
            assert consumed > 0

    def test_steal_order_shuffle_is_identity(self):
        net = make_backtracking_net(stages=3, trap_depth=3)
        baseline = result_identity(
            find_schedule(net, "src", options=SchedulerOptions())
        )
        rng = random.Random(0xC0DAC)
        intra._publish_order_hook = lambda envelopes: rng.sample(
            envelopes, len(envelopes)
        )
        for trial in range(6):
            result = find_schedule(
                net, "src", options=SchedulerOptions(intra_workers=4)
            )
            assert result_identity(result) == baseline, f"shuffle trial {trial}"

    def test_node_budget_coupling_recomputes_inline(self):
        # a budget barely above the serial tree size: splices near the limit
        # are rejected (worker-local indices would see a laxer budget) and
        # recomputed at the serial point -- results stay identical
        net = make_backtracking_net(stages=2, trap_depth=4)
        serial = find_schedule(net, "src", options=SchedulerOptions())
        budget = serial.tree_nodes + 2
        tight_base = find_schedule(
            net, "src", options=SchedulerOptions(max_nodes=budget)
        )
        for workers in (2, 4):
            result = find_schedule(
                net, "src", options=SchedulerOptions(max_nodes=budget, intra_workers=workers)
            )
            assert result_identity(result) == result_identity(tight_base)


# ---------------------------------------------------------------------------
# fault injection: degraded workers, identical results
# ---------------------------------------------------------------------------


class TestFaultInjection:
    @pytest.mark.parametrize("fault", ("raise", "die"))
    def test_worker_fault_degrades_with_one_warning(self, fault):
        net = make_backtracking_net(stages=2, trap_depth=4)
        baseline = result_identity(
            find_schedule(net, "src", options=SchedulerOptions())
        )
        intra._fault_hook = lambda task_id: fault
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = find_schedule(
                net, "src", options=SchedulerOptions(intra_workers=2)
            )
        intra._fault_hook = None
        assert result_identity(result) == baseline
        degraded = [
            w
            for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "intra-search worker degraded" in str(w.message)
        ]
        assert len(degraded) == 1
        assert result.intra_stats["worker_failures"] >= 1
        assert result.intra_stats["inline"] >= 1

    def test_search_after_worker_death_recovers(self):
        net = make_backtracking_net(stages=2, trap_depth=4)
        baseline = result_identity(
            find_schedule(net, "src", options=SchedulerOptions())
        )
        intra._fault_hook = lambda task_id: "die"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            find_schedule(net, "src", options=SchedulerOptions(intra_workers=2))
        intra._fault_hook = None
        # the pool lost its helper; the next search must rebuild it and
        # come back clean (no warning, full identity)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = find_schedule(
                net, "src", options=SchedulerOptions(intra_workers=2)
            )
        assert result_identity(result) == baseline


# ---------------------------------------------------------------------------
# counters: merge/aggregate permutation invariance, BACKEND_ONLY exclusion
# ---------------------------------------------------------------------------


class TestCounterMerge:
    def _subtree_counters(self):
        rng = random.Random(7)
        parts = []
        for _ in range(5):
            counters = SearchCounters()
            for field in counters.as_dict():
                setattr(counters, field, rng.randrange(100))
            parts.append(counters)
        return parts

    def test_any_merge_permutation_same_aggregate(self):
        parts = self._subtree_counters()
        expected = SearchCounters.aggregate(parts).as_dict()
        for perm in itertools.permutations(parts):
            assert SearchCounters.aggregate(perm).as_dict() == expected
            # pairwise left-fold merge (what the splice loop actually does)
            total = SearchCounters()
            for item in perm:
                total.merge(item)
            assert total.as_dict() == expected

    def test_backend_only_counters_stay_excluded(self):
        assert set(SearchCounters.BACKEND_ONLY) == {
            "batched_expansions",
            "kernel_expansions",
        }
        builder, sources = GOLDEN_CASES["pfc_4x5"]
        net = builder()
        scalar = find_schedule(
            net, sources[0], options=SchedulerOptions(backend="scalar")
        )
        kernel = find_schedule(
            net, sources[0], options=SchedulerOptions(backend="kernel", intra_workers=2)
        )

        def visible(counters):
            return {
                key: value
                for key, value in counters.as_dict().items()
                if key not in SearchCounters.BACKEND_ONLY
            }

        # cross-backend AND cross-worker-count: everything but the
        # BACKEND_ONLY tallies matches the scalar serial search exactly
        assert visible(kernel.counters) == visible(scalar.counters)
        assert schedule_to_json(kernel.schedule) == schedule_to_json(scalar.schedule)


# ---------------------------------------------------------------------------
# wiring: caches, serve whitelist, per-source composition
# ---------------------------------------------------------------------------


class TestWiring:
    def test_cache_key_ignores_intra_workers(self):
        keys = {
            options_cache_key(SchedulerOptions(intra_workers=workers))
            for workers in WORKER_MATRIX
        }
        assert len(keys) == 1

    def test_result_record_never_carries_intra_stats(self):
        from repro.scheduling.serialize import result_to_record

        net = make_backtracking_net(stages=2, trap_depth=3)
        result = find_schedule(net, "src", options=SchedulerOptions(intra_workers=2))
        assert result.intra_stats is not None
        record = result_to_record(result)
        assert "intra_stats" not in record
        assert "intra" not in str(sorted(record)).lower()

    def test_serve_whitelist_accepts_and_validates_intra_workers(self):
        from repro.serve.protocol import ProtocolError, options_from_dict

        options = options_from_dict({"intra_workers": 4})
        assert options.intra_workers == 4
        for bad in (0, -1, 65, "2", True, 2.0):
            with pytest.raises(ProtocolError):
                options_from_dict({"intra_workers": bad})

    def test_find_all_schedules_composes_sequentially(self):
        # intra_workers > 1 takes precedence over the per-source fan-out:
        # sources run sequentially through one shared helper pool, and the
        # results still match the plain serial multi-source loop exactly
        builder, _sources = GOLDEN_CASES["figure_5"]
        net = builder()
        serial = find_all_schedules(net)
        combined = find_all_schedules(
            net, workers=2, options=SchedulerOptions(intra_workers=2)
        )
        assert sorted(serial) == sorted(combined)
        for source, result in serial.items():
            assert schedule_to_json(result.schedule) == schedule_to_json(
                combined[source].schedule
            )
            assert combined[source].intra_stats is not None

    def test_pool_is_reused_across_searches(self):
        net = make_backtracking_net(stages=2, trap_depth=3)
        find_schedule(net, "src", options=SchedulerOptions(intra_workers=2))
        pool = intra._POOLS.get(1)
        assert pool is not None
        pids = [process.pid for process in pool.helpers]
        find_schedule(net, "src", options=SchedulerOptions(intra_workers=2))
        again = intra._POOLS.get(1)
        assert again is pool
        assert [process.pid for process in again.helpers] == pids


# ---------------------------------------------------------------------------
# slow full sweep (CI worker-matrix leg; deselected from tier-1)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_full_corpus_full_matrix():
    specs = generate_corpus(CORPUS_SIZE, seed=CORPUS_SEED)
    for spec in specs:
        case = build_case(spec)
        net = link(case.network).net
        for source in case.manifest["source_transitions"]:
            baseline = result_identity(
                find_schedule(net, source, options=SchedulerOptions())
            )
            for workers in WORKER_MATRIX[1:]:
                result = find_schedule(
                    net, source, options=SchedulerOptions(intra_workers=workers)
                )
                assert result_identity(result) == baseline, (
                    f"{spec.label()}/{source} diverged at intra_workers={workers}"
                )
    intra.shutdown_pools()
