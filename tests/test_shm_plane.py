"""The shared-memory analysis plane: zero-copy transport, never a semantics change.

Pins the tentpole contract of :mod:`repro.petrinet.shm`:

* publish/attach is a faithful round trip -- the attached snapshot borrows
  the published arrays read-only and without copying, and schedules derived
  through it are byte-identical (schedules, fingerprints, counters) to the
  serial and pickle-shipping parallel paths on every golden net;
* every degradation -- shared memory unavailable, stale/unlinked blocks,
  fingerprint mismatches -- falls back to the pickled-net path with a
  warning and still produces the correct schedules;
* lifecycle hygiene: refcounts unlink blocks deterministically, worker-side
  LRU eviction detaches attachments.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from golden_nets import GOLDEN_CASES
from repro.apps import paper_nets
from repro.petrinet import shm as shm_mod
from repro.petrinet.batched import consumption_matrix, delta_matrix, production_matrix
from repro.petrinet.fingerprint import structural_fingerprint
from repro.scheduling import parallel as parallel_mod
from repro.scheduling.ep import SchedulerOptions, find_all_schedules, find_schedule
from repro.scheduling.parallel import aggregate_counters, find_all_schedules_parallel
from repro.scheduling.serialize import schedule_fingerprint, schedule_to_json


@pytest.fixture
def fresh_shm_state():
    """Isolate the process-wide plane registry and worker cache per test."""
    shm_mod._registry().clear()
    parallel_mod._MATERIALISED.clear()
    yield
    shm_mod._registry().clear()
    parallel_mod._MATERIALISED.clear()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=2) as executor:
        yield executor


def _signature(results):
    return {
        source: (
            (
                schedule_to_json(result.schedule),
                schedule_fingerprint(result.schedule),
            )
            if result.schedule is not None
            else result.failure_reason
        )
        for source, result in results.items()
    }


# ---------------------------------------------------------------------------
# publish / attach round trip
# ---------------------------------------------------------------------------


def test_publish_attach_is_zero_copy_and_read_only(fresh_shm_state):
    net = paper_nets.figure_5()
    plane = shm_mod.acquire_shared_plane(net)
    assert plane is not None
    try:
        attached = shm_mod.attach_net(plane.handle)
        try:
            inet = attached.net.indexed()
            for matrix, reference in (
                (consumption_matrix(inet), consumption_matrix(net.indexed())),
                (production_matrix(inet), production_matrix(net.indexed())),
                (delta_matrix(inet), delta_matrix(net.indexed())),
            ):
                assert np.array_equal(matrix, reference)
                # borrowed views over the published pages, not copies
                assert not matrix.flags.writeable
                assert not matrix.flags.owndata
            assert inet.initial_vec == net.indexed().initial_vec
            from repro.petrinet.analysis import all_place_degrees

            assert attached.analysis.degrees == all_place_degrees(net)
        finally:
            attached.close()
        # after detach the snapshot rebuilds private matrices on demand
        rebuilt = consumption_matrix(attached.net.indexed())
        assert np.array_equal(rebuilt, consumption_matrix(net.indexed()))
    finally:
        plane.release()


def test_close_with_escaped_view_defers_the_unmap(fresh_shm_state):
    """An escaped borrowed view must stay readable after close().

    ``SharedMemory.close`` unmaps even while NumPy views are alive (no
    ``BufferError`` protects them), so ``AttachedNet.close`` must detect
    outstanding references and leave those mappings to garbage collection
    -- reading through the escapee afterwards is then safe, not a fault.
    """
    net = paper_nets.figure_5()
    plane = shm_mod.acquire_shared_plane(net)
    assert plane is not None
    try:
        attached = shm_mod.attach_net(plane.handle)
        escaped = consumption_matrix(attached.net.indexed())
        reference = escaped.copy()
        attached.close()
        assert np.array_equal(escaped, reference)  # would crash if unmapped
        # with no escapees the mappings are closed eagerly
        attached2 = shm_mod.attach_net(plane.handle)
        attached2.close()
        assert attached2._view_blocks == {} and attached2._views == {}
    finally:
        plane.release()


def test_attached_net_schedules_identically(fresh_shm_state):
    net = paper_nets.figure_6()
    plane = shm_mod.acquire_shared_plane(net)
    assert plane is not None
    try:
        attached = shm_mod.attach_net(plane.handle)
        try:
            for source in net.uncontrollable_sources():
                original = find_schedule(net, source)
                via_shm = find_schedule(
                    attached.net, source, analysis=attached.analysis
                )
                assert schedule_to_json(original.schedule) == schedule_to_json(
                    via_shm.schedule
                )
                assert original.counters.as_dict() == via_shm.counters.as_dict()
                assert original.tree_nodes == via_shm.tree_nodes
        finally:
            attached.close()
    finally:
        plane.release()


def test_refcounted_unlink_and_stale_attach(fresh_shm_state):
    net = paper_nets.figure_4a()
    plane = shm_mod.publish_net(net)
    handle = plane.handle
    plane.acquire()
    plane.release()
    assert not plane.closed  # one reference still held
    plane.release()
    assert plane.closed  # last release closed and unlinked the blocks
    with pytest.raises(shm_mod.SharedAttachError):
        shm_mod.attach_net(handle)


# ---------------------------------------------------------------------------
# acceptance: byte-identity across transports on every golden net
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("net_name", sorted(GOLDEN_CASES))
def test_golden_nets_identical_over_shared_plane(net_name, pool, fresh_shm_state):
    """Serial == parallel(shm handle) == parallel(pickle) on each golden net."""
    builder, _sources = GOLDEN_CASES[net_name]
    net = builder()
    serial = find_all_schedules(net)
    shared = find_all_schedules_parallel(net, executor=pool)
    assert _signature(serial) == _signature(shared)
    assert (
        aggregate_counters(serial.values()).as_dict()
        == aggregate_counters(shared.values()).as_dict()
    )
    for source, result in serial.items():
        assert shared[source].tree_nodes == result.tree_nodes
        assert shared[source].counters.as_dict() == result.counters.as_dict()


def test_own_pool_initializer_ships_handle_not_bytes(fresh_shm_state, monkeypatch):
    """workers=2 spawns a pool whose initializer carries only the handle."""
    shipped = {}
    original = parallel_mod._run_own_pool

    def spy(worker_count, fingerprint, payload, options_blob, pending, plane):
        shipped["plane"] = plane
        return original(worker_count, fingerprint, payload, options_blob, pending, plane)

    monkeypatch.setattr(parallel_mod, "_run_own_pool", spy)
    net = paper_nets.figure_5()
    serial = find_all_schedules(net)
    parallel = find_all_schedules(net, workers=2)
    assert _signature(serial) == _signature(parallel)
    assert shipped["plane"] is not None, "shared plane should be published"


def test_workers_one_skips_the_plane(fresh_shm_state, monkeypatch):
    published = []
    monkeypatch.setattr(
        parallel_mod,
        "acquire_shared_plane",
        lambda *a, **k: published.append(a) or None,
    )
    net = paper_nets.figure_5()
    results = find_all_schedules_parallel(net, workers=1)
    assert all(r.success for r in results.values())
    assert published == []  # workers=1 never publishes


def test_repro_shm_env_disables_the_plane(fresh_shm_state, monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    assert not shm_mod.shm_enabled()
    net = paper_nets.figure_5()
    assert shm_mod.acquire_shared_plane(net) is None
    serial = find_all_schedules(net)
    parallel = find_all_schedules(net, workers=2)
    assert _signature(serial) == _signature(parallel)


# ---------------------------------------------------------------------------
# degradation: every failure falls back to the pickle path, with a warning
# ---------------------------------------------------------------------------


def test_shared_memory_oserror_falls_back_with_warning(fresh_shm_state, monkeypatch):
    def refuse(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(shm_mod._shared_memory, "SharedMemory", refuse)
    net = paper_nets.figure_5()
    with pytest.warns(RuntimeWarning, match="falling back to pickled-net"):
        plane = shm_mod.acquire_shared_plane(net)
    assert plane is None
    serial = find_all_schedules(net)
    with pytest.warns(RuntimeWarning):
        parallel = find_all_schedules(net, workers=2)
    assert _signature(serial) == _signature(parallel)


def test_stale_block_name_falls_back_to_pickle(fresh_shm_state):
    net = paper_nets.figure_5()
    fingerprint = structural_fingerprint(net)
    payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
    plane = shm_mod.publish_net(net, fingerprint)
    handle = plane.handle
    plane.release()  # unlinks every block: the handle is now stale
    with pytest.warns(RuntimeWarning, match="attach failed"):
        entry = parallel_mod._materialise(fingerprint, payload, handle)
    assert entry.attachment is None  # pickle path
    result = find_schedule(entry.net, "a", analysis=entry.analysis)
    assert schedule_to_json(result.schedule) == schedule_to_json(
        find_schedule(net, "a").schedule
    )


def test_fingerprint_mismatch_falls_back_to_pickle(fresh_shm_state):
    net = paper_nets.figure_5()
    other = paper_nets.figure_6()
    plane = shm_mod.publish_net(other)
    try:
        # a handle claiming net's fingerprint but pointing at figure_6's blocks
        forged = dataclasses.replace(
            plane.handle, fingerprint=structural_fingerprint(net)
        )
        with pytest.raises(shm_mod.FingerprintMismatchError):
            shm_mod.attach_net(forged)
        fingerprint = structural_fingerprint(net)
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.warns(RuntimeWarning, match="attach failed"):
            entry = parallel_mod._materialise(fingerprint, payload, forged)
        assert entry.attachment is None
        result = find_schedule(entry.net, "a", analysis=entry.analysis)
        assert schedule_to_json(result.schedule) == schedule_to_json(
            find_schedule(net, "a").schedule
        )
    finally:
        plane.release()


def test_materialise_without_payload_or_handle_raises(fresh_shm_state):
    with pytest.raises(RuntimeError, match="no payload was shipped"):
        parallel_mod._materialise("deadbeef" * 8, None, None)


# ---------------------------------------------------------------------------
# worker-side LRU: eviction detaches attachments deterministically
# ---------------------------------------------------------------------------


def test_worker_lru_eviction_detaches_attachments(fresh_shm_state):
    builders = [
        paper_nets.figure_4a,
        paper_nets.figure_4b,
        paper_nets.figure_5,
        paper_nets.figure_6,
        paper_nets.figure_8,
    ]
    assert len(builders) > parallel_mod._MATERIALISED.capacity
    planes = []
    entries = []
    try:
        for builder in builders:
            net = builder()
            fingerprint = structural_fingerprint(net)
            plane = shm_mod.acquire_shared_plane(net, fingerprint)
            assert plane is not None
            planes.append(plane)
            entries.append(
                parallel_mod._materialise(fingerprint, None, plane.handle)
            )
        assert all(entry.attachment is not None for entry in entries)
        # capacity exceeded by one: the first entry was evicted and detached
        assert entries[0].attachment._closed
        assert not entries[-1].attachment._closed
    finally:
        parallel_mod._MATERIALISED.clear()
        for plane in planes:
            plane.release()
    assert all(entry.attachment._closed for entry in entries)


def test_bench_helper_reports_both_transports(fresh_shm_state):
    net = paper_nets.figure_5()
    plane = shm_mod.acquire_shared_plane(net)
    assert plane is not None
    try:
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
        sample = shm_mod.measure_attach_vs_rebuild(plane.handle, payload)
        assert sample["pid"] == os.getpid()
        assert sample["attach_seconds"] > 0.0
        assert sample["rebuild_seconds"] > 0.0
    finally:
        plane.release()
