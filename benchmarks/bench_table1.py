"""Benchmark regenerating Table 1: cycles vs. number of transmitted frames."""

from __future__ import annotations

from repro.experiments.table1 import format_table1, ratios_by_profile, run_table1


def test_table1_reproduction(benchmark, pfc_setup, capsys):
    rows = benchmark.pedantic(
        run_table1,
        kwargs={
            "setup": pfc_setup,
            "frame_counts": (10, 50, 100, 500, 1000),
            "profiles": ("pfc", "pfc-O", "pfc-O2"),
            "max_simulated_frames": 50,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table1(rows))
        print("  [paper: ratios 3.9 (pfc), 5.1-5.2 (pfc-O), 5.1-5.2 (pfc-O2)]")
    ratios = ratios_by_profile(rows)
    # the paper's shape: single task ~4-5x faster, optimisation widens the gap
    assert all(2.5 < value < 9.0 for values in ratios.values() for value in values)
    assert min(ratios["pfc-O"]) >= max(ratios["pfc"]) - 0.5
    assert min(ratios["pfc-O2"]) >= max(ratios["pfc"]) - 0.5
