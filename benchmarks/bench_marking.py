"""Microbenchmarks of the Petri-net kernel primitives.

These isolate the operations the scheduling search performs per tree node --
firing a transition, querying the enabled set / enabled ECSs, and hashing a
marking -- on the PFC (video) net and on a paper figure net, so the indexed
core's speedup stays visible in the bench trajectory independently of the
end-to-end scheduler numbers.

Each facade benchmark has an ``_indexed`` twin running the same workload on
the dense core; comparing the two shows what the facade boundary costs.
"""

from __future__ import annotations

import random

from repro.apps import paper_nets
from repro.apps.video import VideoAppConfig, build_video_system
from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.marking import Marking

BENCH_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


def _video_net():
    return build_video_system(BENCH_CONFIG).net


def _random_walk(net, steps: int, seed: int = 7):
    """A fixed random firing sequence (transition names) from M0."""
    rng = random.Random(seed)
    indexed = net.indexed()
    vec = indexed.initial_vec
    sequence = []
    for _ in range(steps):
        enabled = indexed.enabled_vec(vec)
        if not enabled:
            break
        tid = rng.choice(enabled)
        sequence.append(indexed.transition_names[tid])
        vec = indexed.fire_vec(tid, vec)
    return sequence


# ---------------------------------------------------------------------------
# fire
# ---------------------------------------------------------------------------


def test_fire_facade_pfc(benchmark):
    net = _video_net()
    sequence = _random_walk(net, 200)

    def run():
        marking = net.initial_marking
        for transition in sequence:
            marking = net.fire(transition, marking)
        return marking

    benchmark(run)


def test_fire_indexed_pfc(benchmark):
    net = _video_net()
    indexed = net.indexed()
    sequence = [indexed.transition_index[t] for t in _random_walk(net, 200)]

    def run():
        vec = indexed.initial_vec
        for tid in sequence:
            vec = indexed.fire_vec(tid, vec)
        return vec

    benchmark(run)


def test_fire_facade_figure7(benchmark):
    net = paper_nets.figure_7(4)
    sequence = _random_walk(net, 200)

    def run():
        marking = net.initial_marking
        for transition in sequence:
            marking = net.fire(transition, marking)
        return marking

    benchmark(run)


# ---------------------------------------------------------------------------
# enabled sets
# ---------------------------------------------------------------------------


def test_enabled_transitions_facade_pfc(benchmark):
    net = _video_net()
    marking = net.fire_sequence(_random_walk(net, 50))
    benchmark(net.enabled_transitions, marking)


def test_enabled_scan_indexed_pfc(benchmark):
    net = _video_net()
    indexed = net.indexed()
    vec = indexed.initial_vec
    for tid in (indexed.transition_index[t] for t in _random_walk(net, 50)):
        vec = indexed.fire_vec(tid, vec)
    benchmark(indexed.enabled_vec, vec)


def test_enabled_incremental_indexed_pfc(benchmark):
    """Incremental maintenance along a walk vs. a full scan per step."""
    net = _video_net()
    indexed = net.indexed()
    tids = [indexed.transition_index[t] for t in _random_walk(net, 200)]

    def run():
        vec = indexed.initial_vec
        enabled = frozenset(indexed.enabled_vec(vec))
        for tid in tids:
            vec = indexed.fire_vec(tid, vec)
            enabled = indexed.enabled_after(enabled, tid, vec)
        return enabled

    benchmark(run)


def test_enabled_ecss_pfc(benchmark):
    net = _video_net()
    analysis = StructuralAnalysis.of(net)
    marking = net.fire_sequence(_random_walk(net, 50))
    benchmark(analysis.enabled_ecss, marking)


# ---------------------------------------------------------------------------
# marking hashing / interning
# ---------------------------------------------------------------------------


def test_marking_hash_facade_pfc(benchmark):
    net = _video_net()
    marking = net.fire_sequence(_random_walk(net, 50))
    items = dict(marking)

    def run():
        return hash(Marking(items))

    benchmark(run)


def test_marking_hash_indexed_pfc(benchmark):
    net = _video_net()
    indexed = net.indexed()
    vec = indexed.vec_of_marking(net.fire_sequence(_random_walk(net, 50)))
    lst = list(vec)

    def run():
        return hash(tuple(lst))

    benchmark(run)
