"""Benchmark regenerating Figure 20: execution cycles vs. FIFO size.

Run with ``pytest benchmarks/ --benchmark-only``.  The benchmark measures the
wall-clock cost of producing the figure's data and prints the reproduced
series (4-task implementation for several buffer sizes and compiler profiles
vs. the synthesized single task).
"""

from __future__ import annotations

from repro.experiments.figure20 import format_figure20, run_figure20, speedup_by_profile


def test_figure20_reproduction(benchmark, pfc_setup, capsys):
    points = benchmark.pedantic(
        run_figure20,
        kwargs={
            "setup": pfc_setup,
            "frames": 10,
            "buffer_sizes": (1, 2, 5, 10, 20, 50, 100),
            "profiles": ("pfc", "pfc-O", "pfc-O2"),
        },
        rounds=1,
        iterations=1,
    )
    speedups = speedup_by_profile(points)
    with capsys.disabled():
        print()
        print(format_figure20(points))
        print(f"  [paper: the single task out-performs by a factor of 4 to 10]")
    # shape assertions: the single task wins under every profile
    assert all(value > 1.5 for value in speedups.values())
    multi = [p for p in points if p.implementation == "multi-task" and p.profile == "pfc"]
    by_buffer = {p.buffer_size: p.cycles for p in multi}
    assert by_buffer[100] <= by_buffer[1]
