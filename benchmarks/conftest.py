"""Shared fixtures for the benchmark harnesses.

The benchmarks regenerate the paper's tables and figures.  Scheduling the PFC
system is done once per session; each benchmark then measures the harness that
produces one table / figure.  ``--benchmark-only`` keeps pytest from running
the unit tests in this directory (there are none).
"""

from __future__ import annotations

import pytest

from repro.apps.video import VideoAppConfig
from repro.experiments.common import build_pfc_setup

# The paper's geometry is 10x10 pixels per frame; benchmarks default to a
# reduced 4x5 geometry so the full suite stays in the minutes range.  Set to
# VideoAppConfig(10, 10) to regenerate the exact paper-sized experiment.
BENCH_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


@pytest.fixture(scope="session")
def pfc_setup():
    return build_pfc_setup(BENCH_CONFIG)
