"""Load benchmark of the scheduling daemon (``repro.serve``).

Drives concurrent JSON-lines clients against one daemon and verifies the
serving layer's contract under load:

* **stampede** -- N cold concurrent requests for one expensive net must
  coalesce onto a single in-flight EP search;
* **zipf** -- a measured pass of many requests zipf-distributed (s ~ 1.1)
  over a corpus of nets against a warm daemon must be answered almost
  entirely by the caches (``coalesced + cache_hits > 0.9 * requests``) with
  zero errors;
* **verification** -- every response's per-source schedule fingerprint must
  be byte-identical to a serial :func:`repro.scheduling.ep.find_all_schedules`
  run over the same corpus.

Results land in the ``"serve"`` section of ``BENCH_scheduler.json``
(read-modify-write: the scheduler benchmark's sections are preserved).

Modes::

    python benchmarks/bench_serve.py                  # in-process daemon
    python benchmarks/bench_serve.py --spawn          # real subprocess daemon
    python benchmarks/bench_serve.py --smoke          # CI: 50 requests, 5 nets

``--smoke`` asserts and exits non-zero on violation but writes no JSON;
``--spawn`` starts ``python -m repro.serve --port 0`` and discovers the port
from the daemon's ready line, exercising the CLI path end to end.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import paper_nets  # noqa: E402
from repro.apps.workloads import (  # noqa: E402
    random_choice_net,
    random_marked_graph,
    random_multi_source_net,
)
from repro.petrinet.net import PetriNet  # noqa: E402
from repro.scheduling.ep import find_all_schedules  # noqa: E402
from repro.scheduling.serialize import schedule_fingerprint  # noqa: E402
from repro.serve.protocol import net_to_dict  # noqa: E402

ZIPF_EXPONENT = 1.1
SEED = 20260808

#: The stampede target: ~50ms of sequential per-source searches, long enough
#: that a cold burst's later arrivals reliably find the first one in flight.
STAMPEDE_NET = "multi_4x30"


def build_corpus() -> List[Tuple[str, PetriNet]]:
    """The serving corpus: paper figures plus generated families (14 nets).

    Ordered hot-to-cold for the zipf assignment -- cheap nets take most of
    the load, the expensive stampede net sits mid-tail.
    """
    return [
        ("figure_5", paper_nets.figure_5()),
        ("figure_4a", paper_nets.figure_4a()),
        ("figure_6", paper_nets.figure_6()),
        ("figure_8", paper_nets.figure_8()),
        # figure_4b is the paper's *non-schedulable* example; it has no place
        # in a corpus verified against successful serial schedules
        ("rmg_12", random_marked_graph(12, seed=9)),
        ("figure_7_k3", paper_nets.figure_7(3)),
        ("figure_7_k6", paper_nets.figure_7(6)),
        ("rmg_8", random_marked_graph(8, seed=1)),
        ("rmg_16", random_marked_graph(16, seed=2)),
        ("rmg_24", random_marked_graph(24, seed=3)),
        ("choice_3", random_choice_net(3, seed=4)),
        ("choice_5", random_choice_net(5, seed=5)),
        ("multi_2x10", random_multi_source_net(2, 10, seed=6)),
        (STAMPEDE_NET, random_multi_source_net(4, 30, seed=7)),
    ]


def zipf_sequence(names: Sequence[str], count: int, seed: int = SEED) -> List[str]:
    """``count`` net names, zipf-distributed over ``names`` by rank."""
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(names))]
    rng = random.Random(seed)
    return rng.choices(list(names), weights=weights, k=count)


def serial_reference(
    corpus: Sequence[Tuple[str, PetriNet]],
) -> Dict[str, Dict[str, str]]:
    """Ground truth: per-net, per-source schedule fingerprints, found serially."""
    reference: Dict[str, Dict[str, str]] = {}
    for name, net in corpus:
        results = find_all_schedules(net, raise_on_failure=True)
        reference[name] = {
            source: schedule_fingerprint(result.schedule)
            for source, result in results.items()
        }
    return reference


# ---------------------------------------------------------------------------
# client load
# ---------------------------------------------------------------------------


async def _rpc(port: int, payload: dict) -> dict:
    from repro.serve import protocol

    reader, writer = await asyncio.open_connection(
        "127.0.0.1", port, limit=protocol.MAX_LINE_BYTES
    )
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    writer.close()
    if not line:
        raise RuntimeError("daemon closed the connection without answering")
    return json.loads(line)


async def _stats(port: int) -> dict:
    response = await _rpc(port, {"op": "stats"})
    return response["stats"]


def _check_response(
    name: str, response: dict, reference: Dict[str, Dict[str, str]]
) -> List[str]:
    """Mismatch descriptions for one schedule response (empty = verified)."""
    problems = []
    if not response.get("ok"):
        return [f"{name}: error response {response.get('error')}"]
    expected = reference[name]
    got = {r["source"]: r["schedule_fingerprint"] for r in response["results"]}
    if got != expected:
        problems.append(f"{name}: fingerprints diverge from serial reference")
    return problems


async def run_phase(
    port: int,
    requests: Sequence[str],
    nets: Dict[str, dict],
    reference: Dict[str, Dict[str, str]],
    *,
    concurrency: int,
) -> Dict[str, object]:
    """Fire ``requests`` (net names) at the daemon, verify every response."""
    semaphore = asyncio.Semaphore(concurrency)
    latencies: List[float] = []
    mismatches: List[str] = []
    client_errors: List[str] = []
    before = await _stats(port)

    async def one(name: str) -> None:
        async with semaphore:
            started = time.perf_counter()
            try:
                response = await _rpc(
                    port, {"op": "schedule", "net": nets[name]}
                )
            except Exception as error:  # noqa: BLE001 - tallied below
                client_errors.append(f"{name}: {error!r}")
                return
            latencies.append(time.perf_counter() - started)
            mismatches.extend(_check_response(name, response, reference))

    started = time.perf_counter()
    await asyncio.gather(*[one(name) for name in requests])
    elapsed = time.perf_counter() - started
    after = await _stats(port)
    delta = {
        key: after[key] - before[key]
        for key in (
            "requests",
            "responses",
            "errors",
            "bad_requests",
            "timeouts",
            "coalesced",
            "l1_hits",
            "disk_hits",
            "cache_hits",
            "live_searches",
        )
    }
    latencies.sort()

    def pct(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    return {
        "requests": len(requests),
        "concurrency": concurrency,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round(len(requests) / elapsed, 1) if elapsed else 0.0,
        "latency_seconds": {
            "p50": round(pct(0.50), 5),
            "p90": round(pct(0.90), 5),
            "p99": round(pct(0.99), 5),
            "max": round(latencies[-1], 5) if latencies else 0.0,
            "mean": round(statistics.fmean(latencies), 5) if latencies else 0.0,
        },
        "server_delta": delta,
        "mismatches": mismatches,
        "client_errors": client_errors,
    }


async def run_load(
    port: int,
    corpus: Sequence[Tuple[str, PetriNet]],
    reference: Dict[str, Dict[str, str]],
    *,
    stampede_clients: int,
    measured_requests: int,
    concurrency: int,
) -> Dict[str, object]:
    """The three phases -- stampede (cold), warm-up, measured zipf pass."""
    names = [name for name, _ in corpus]
    nets = {name: net_to_dict(net) for name, net in corpus}
    stampede_name = STAMPEDE_NET if STAMPEDE_NET in names else names[-1]

    stampede = await run_phase(
        port,
        [stampede_name] * stampede_clients,
        nets,
        reference,
        concurrency=stampede_clients,
    )
    warmup = await run_phase(port, names, nets, reference, concurrency=1)
    measured = await run_phase(
        port,
        zipf_sequence(names, measured_requests),
        nets,
        reference,
        concurrency=concurrency,
    )
    return {
        "corpus": names,
        "stampede_net": stampede_name,
        "zipf_exponent": ZIPF_EXPONENT,
        "phases": {"stampede": stampede, "warmup": warmup, "measured": measured},
        "final_stats": await _stats(port),
    }


# ---------------------------------------------------------------------------
# daemon frontends: in-process or spawned CLI
# ---------------------------------------------------------------------------


async def _bench_in_process(load) -> Tuple[Dict[str, object], bool]:
    from repro.serve.server import start_server

    server = await start_server(max_workers=4)
    try:
        section = await load(server.port)
    finally:
        clean = await server.shutdown()
    return section, clean


def _bench_spawned(load) -> Tuple[Dict[str, object], bool]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", "--workers", "4"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        ready = json.loads(process.stdout.readline())
        assert ready["event"] == "ready", ready
        port = ready["port"]

        async def scenario():
            section = await load(port)
            await _rpc(port, {"op": "shutdown"})
            return section

        section = asyncio.run(scenario())
        process.wait(timeout=30)
        stopped = json.loads(process.stdout.readline())
        clean = bool(stopped.get("clean_drain")) and process.returncode == 0
        section["daemon"] = {"mode": "spawned", "pid": ready["pid"], "stopped": stopped}
        return section, clean
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


# ---------------------------------------------------------------------------
# acceptance checks + report
# ---------------------------------------------------------------------------


def evaluate(section: Dict[str, object], clean: bool, *, smoke: bool) -> List[str]:
    """The acceptance criteria; violations returned as messages."""
    phases = section["phases"]
    totals = {
        key: sum(phase["server_delta"][key] for phase in phases.values())
        for key in phases["measured"]["server_delta"]
    }
    mismatches = [m for phase in phases.values() for m in phase["mismatches"]]
    client_errors = [e for phase in phases.values() for e in phase["client_errors"]]
    section["totals"] = totals
    warm = totals["coalesced"] + totals["cache_hits"]
    section["warm_ratio"] = round(warm / totals["requests"], 4) if totals["requests"] else 0.0
    section["clean_shutdown"] = clean

    problems = []
    if totals["errors"] or totals["bad_requests"] or totals["timeouts"]:
        problems.append(f"daemon reported errors: {totals}")
    if client_errors:
        problems.append(f"{len(client_errors)} client errors: {client_errors[:3]}")
    if mismatches:
        problems.append(f"{len(mismatches)} fingerprint mismatches: {mismatches[:3]}")
    if totals["coalesced"] < 1:
        problems.append("no request ever coalesced (single-flight had no effect)")
    if not clean:
        problems.append("daemon shutdown did not drain cleanly")
    if not smoke and warm <= 0.9 * totals["requests"]:
        problems.append(
            f"warm ratio {section['warm_ratio']} <= 0.9: the caches did not "
            "absorb the load"
        )
    return problems


def write_report(section: Dict[str, object], output: Path) -> None:
    """Merge the ``"serve"`` section into the scheduler benchmark report."""
    report: Dict[str, object] = {}
    if output.exists():
        try:
            with open(output) as handle:
                report = json.load(handle)
        except ValueError:
            report = {}
    report["serve"] = section
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive concurrent clients against the scheduling daemon."
    )
    parser.add_argument(
        "--requests", type=int, default=1000,
        help="measured zipf requests (default: 1000)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=64,
        help="concurrent clients in the measured phase (default: 64)",
    )
    parser.add_argument(
        "--stampede", type=int, default=24,
        help="cold concurrent clients in the stampede phase (default: 24)",
    )
    parser.add_argument(
        "--spawn", action="store_true",
        help="run the daemon as a 'python -m repro.serve' subprocess",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 50 requests over 5 nets, assertions only, no JSON",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_scheduler.json"),
        help="scheduler benchmark report to merge the 'serve' section into",
    )
    args = parser.parse_args(argv)

    corpus = build_corpus()
    if args.smoke:
        # the stampede net stays in -- it is what makes coalesced > 0 certain
        corpus = corpus[:4] + [corpus[-1]]
        args.requests, args.concurrency, args.stampede = 30, 16, 20
    print(f"corpus: {len(corpus)} nets; serial reference pass ...", flush=True)
    reference = serial_reference(corpus)

    def load(port: int):
        return run_load(
            port,
            corpus,
            reference,
            stampede_clients=args.stampede,
            measured_requests=args.requests,
            concurrency=args.concurrency,
        )

    if args.spawn:
        section, clean = _bench_spawned(load)
    else:
        section, clean = asyncio.run(_bench_in_process(load))
        section["daemon"] = {"mode": "in-process"}

    problems = evaluate(section, clean, smoke=args.smoke)
    totals = section["totals"]
    print(
        f"requests={totals['requests']} coalesced={totals['coalesced']} "
        f"cache_hits={totals['cache_hits']} live_searches={totals['live_searches']} "
        f"errors={totals['errors']} warm_ratio={section['warm_ratio']} "
        f"clean_shutdown={section['clean_shutdown']}"
    )
    measured = section["phases"]["measured"]
    print(
        f"measured: {measured['requests']} reqs @ {measured['concurrency']} clients "
        f"-> {measured['throughput_rps']} rps, "
        f"p50={measured['latency_seconds']['p50'] * 1000:.1f}ms "
        f"p99={measured['latency_seconds']['p99'] * 1000:.1f}ms"
    )
    if not args.smoke:
        write_report(section, Path(args.output))
        print(f"'serve' section written to {args.output}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("all serving-layer criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
