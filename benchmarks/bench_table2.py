"""Benchmark regenerating Table 2: code size of 1 task vs. 4 process tasks,
plus the code-segment-sharing ablation."""

from __future__ import annotations

from repro.experiments.table2 import format_table2, run_table2


def test_table2_reproduction(benchmark, pfc_setup, capsys):
    rows = benchmark.pedantic(
        run_table2,
        kwargs={"setup": pfc_setup},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table2(rows))
        print("  [paper: single task ~7.2-8.7x smaller with inlined communication]")
    for row in rows:
        assert row.ratio > 2.0


def test_table2_sharing_ablation(benchmark, pfc_setup, capsys):
    shared = run_table2(setup=pfc_setup, share_code_segments=True)
    unshared = benchmark.pedantic(
        run_table2,
        kwargs={"setup": pfc_setup, "share_code_segments": False},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Ablation: code-segment sharing disabled")
        print(format_table2(unshared))
    for with_sharing, without_sharing in zip(shared, unshared):
        assert without_sharing.single_task_bytes >= with_sharing.single_task_bytes
