"""Ablation benchmark: irrelevance criterion vs. fixed place bounds
(the Figure 7 divider/multiplier argument of Section 4.4)."""

from __future__ import annotations

from repro.experiments.irrelevance_study import format_irrelevance_study, run_irrelevance_study


def test_irrelevance_vs_place_bounds(benchmark, capsys):
    rows = benchmark.pedantic(
        run_irrelevance_study,
        kwargs={"ks": (3, 4, 5), "bounds": (2, 3, 4), "max_nodes": 8000},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_irrelevance_study(rows))
        print("  [paper: no constant bound works for every k; the irrelevance criterion does]")
    irrelevance = [row for row in rows if row.condition == "irrelevance"]
    bounded = [row for row in rows if row.condition.startswith("bound")]
    assert all(row.success for row in irrelevance)
    # small constant bounds fail on this family (the paper's argument)
    assert all(not row.success for row in bounded if row.k >= 3)
