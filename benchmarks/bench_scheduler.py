"""Benchmarks of the scheduling algorithm itself.

* E4: the Section 8.2 claim -- the PFC system is scheduled into a single task
  with unit-size control channels in well under a minute.
* Ablation: T-invariant-guided ECS ordering vs. the plain tie-break ordering.

Besides the pytest-benchmark harnesses, the module is a CLI that times the
serial vs. parallel ``find_all_schedules`` paths -- for the scalar and the
batched EP-search backend -- and writes the comparison to
``BENCH_scheduler.json``:

    PYTHONPATH=src python benchmarks/bench_scheduler.py --workers 4
    PYTHONPATH=src python benchmarks/bench_scheduler.py --backend batched
    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.divisors import build_divisors_system
from repro.apps.video import VideoAppConfig, build_video_system
from repro.apps.workloads import random_multi_source_net
from repro.experiments.schedule_stats import run_schedule_stats
from repro.scheduling.ep import SchedulerOptions, find_all_schedules, find_schedule
from repro.scheduling.serialize import schedule_to_json

BENCH_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


def test_pfc_scheduling_time(benchmark, capsys):
    stats = benchmark.pedantic(
        run_schedule_stats, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"PFC scheduling: {stats.schedule_nodes} schedule nodes, "
            f"{stats.await_nodes} await node(s), tree={stats.tree_nodes}, "
            f"{stats.seconds:.2f}s, channel bounds={stats.channel_bounds}"
        )
        print(f"  search counters: {stats.describe_counters()}")
        print("  [paper: a single task, all channels of unit size, in less than a minute]")
    assert stats.success
    assert stats.await_nodes == 1
    assert stats.all_control_channels_unit_size
    assert stats.seconds < 60.0


def test_scheduler_heuristic_ablation(benchmark, capsys):
    system = build_video_system(BENCH_CONFIG)

    def schedule_with(use_invariants: bool):
        return find_schedule(
            system.net,
            "src.controller.init",
            options=SchedulerOptions(use_invariant_heuristic=use_invariants, max_nodes=100_000),
            raise_on_failure=True,
        )

    guided = benchmark.pedantic(schedule_with, args=(True,), rounds=1, iterations=1)
    plain = schedule_with(False)
    with capsys.disabled():
        print()
        print(
            "ECS ordering ablation (PFC): "
            f"invariant-guided tree={guided.tree_nodes}, "
            f"tie-break only tree={plain.tree_nodes}"
        )
    assert guided.success and plain.success


def test_divisors_scheduling(benchmark):
    system = build_divisors_system()
    result = benchmark.pedantic(
        find_schedule,
        args=(system.net, "src.divisors.in"),
        kwargs={"raise_on_failure": True},
        rounds=3,
        iterations=1,
    )
    assert result.success


# ---------------------------------------------------------------------------
# CLI: serial vs. parallel, scalar vs. batched -> BENCH_scheduler.json
# ---------------------------------------------------------------------------


def _results_signature(results) -> Dict[str, Optional[str]]:
    return {
        source: (schedule_to_json(r.schedule) if r.schedule else None)
        for source, r in results.items()
    }


def _bench_case(
    name, net, *, backends: Sequence[str], workers: int, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall clock per backend, serial and parallel.

    Every (backend, serial/parallel) combination must produce byte-identical
    schedules -- ``identical_schedules`` records the cross-check.
    """
    per_backend: Dict[str, Dict[str, object]] = {}
    signatures = []
    sources = 0
    for backend in backends:
        serial_times: List[float] = []
        parallel_times: List[float] = []
        serial = parallel = None
        for _ in range(repeats):
            start = time.monotonic()
            serial = find_all_schedules(net, backend=backend)
            serial_times.append(time.monotonic() - start)
            start = time.monotonic()
            parallel = find_all_schedules(net, workers=workers, backend=backend)
            parallel_times.append(time.monotonic() - start)
        signatures.append(_results_signature(serial))
        signatures.append(_results_signature(parallel))
        sources = len(serial)
        best_serial = min(serial_times)
        best_parallel = min(parallel_times)
        per_backend[backend] = {
            "serial_seconds": round(best_serial, 4),
            "parallel_seconds": round(best_parallel, 4),
            "parallel_speedup": (
                round(best_serial / best_parallel, 3) if best_parallel else None
            ),
        }
    row: Dict[str, object] = {
        "case": name,
        "sources": sources,
        "repeats": repeats,
        "backends": per_backend,
        "identical_schedules": all(sig == signatures[0] for sig in signatures),
    }
    if "scalar" in per_backend and "batched" in per_backend:
        scalar_s = per_backend["scalar"]["serial_seconds"]
        batched_s = per_backend["batched"]["serial_seconds"]
        row["batched_speedup"] = round(scalar_s / batched_s, 3) if batched_s else None
    return row


def run_cli_bench(
    *,
    workers: int,
    quick: bool = False,
    repeats: Optional[int] = None,
    backends: Sequence[str] = ("scalar", "batched"),
) -> Dict[str, object]:
    repeats = repeats or (1 if quick else 3)
    cases = [
        ("pfc_4x5", build_video_system(VideoAppConfig(4, 5)).net),
        # eight independent sources: the shape the per-source fan-out targets
        ("multi_source_8x6", random_multi_source_net(8, 6, seed=1)),
    ]
    if not quick:
        cases.insert(1, ("pfc_10x10", build_video_system(VideoAppConfig(10, 10)).net))
    rows = [
        _bench_case(name, net, backends=backends, workers=workers, repeats=repeats)
        for name, net in cases
    ]
    return {
        "benchmark": "find_all_schedules: serial vs parallel, scalar vs batched",
        "backends": list(backends),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "quick": quick,
        "cases": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time serial/parallel and scalar/batched find_all_schedules, emit JSON."
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, os.cpu_count() or 1),
        help="process-pool width for the parallel path (default: max(2, cpus))",
    )
    parser.add_argument(
        "--backend",
        choices=("scalar", "batched", "auto", "both"),
        default="both",
        help="EP-search backend to time; 'both' runs scalar and batched and "
        "reports the batched speedup (default: both)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: skip the 10x10 geometry (runs pfc_4x5 and "
        "multi_source_8x6), one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="override best-of repeat count"
    )
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="where to write the JSON report (default: ./BENCH_scheduler.json)",
    )
    args = parser.parse_args(argv)
    backends = ("scalar", "batched") if args.backend == "both" else (args.backend,)
    report = run_cli_bench(
        workers=args.workers, quick=args.quick, repeats=args.repeats, backends=backends
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for row in report["cases"]:
        timings = " ".join(
            f"{backend}: serial={data['serial_seconds']:.3f}s "
            f"parallel[{args.workers}]={data['parallel_seconds']:.3f}s"
            for backend, data in row["backends"].items()
        )
        extra = (
            f" batched_speedup={row['batched_speedup']}x"
            if "batched_speedup" in row
            else ""
        )
        print(
            f"{row['case']:<18} sources={row['sources']:<3} {timings}"
            f"{extra} identical={row['identical_schedules']}"
        )
    print(f"wrote {args.output}")
    if not all(row["identical_schedules"] for row in report["cases"]):
        print("ERROR: schedules diverge across backends/parallelism", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
