"""Benchmarks of the scheduling algorithm itself.

* E4: the Section 8.2 claim -- the PFC system is scheduled into a single task
  with unit-size control channels in well under a minute.
* Ablation: T-invariant-guided ECS ordering vs. the plain tie-break ordering.

Besides the pytest-benchmark harnesses, the module is a CLI that times the
serial vs. parallel ``find_all_schedules`` paths -- for the scalar, batched
and fused-kernel EP-search backends -- and writes the comparison to
``BENCH_scheduler.json``:

    PYTHONPATH=src python benchmarks/bench_scheduler.py --workers 4
    PYTHONPATH=src python benchmarks/bench_scheduler.py --backend kernel
    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_scheduler.py --profile

With ``--profile`` each case additionally runs once under :mod:`cProfile`
per backend and the top hot functions (by cumulative time) land in a
``"profile"`` section of the JSON -- the table that motivated fusing the
expand/mask/intern sequence into :mod:`repro.petrinet.kernel`.  The
``"kernel"`` section records which tier (compiled numba loop or the NumPy
reference) the timings actually exercised; on hosts without numba the
compiled column is honestly absent rather than silently numpy.

With ``--cache`` the persistent artifact cache (:mod:`repro.cache`) is
activated first and a cache phase per case records the end-to-end scheduling
wall clock of *this process* plus the pure disk-replay time (L1 dropped).
Run the command twice to get the cold-process vs. warm-process comparison:
the first run's JSON reports ``"mode": "cold"`` (search + persist), the
second ``"mode": "warm"`` (zero EP search work, disk replay only).  The
regular backend timings are always measured with the cache deactivated so
they stay comparable across runs.

    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick --cache
    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick --cache   # warm
    PYTHONPATH=src python benchmarks/bench_scheduler.py --cache-clear --cache
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.apps.divisors import build_divisors_system
from repro.apps.video import VideoAppConfig, build_video_system
from repro.apps.workloads import random_multi_source_net
from repro.experiments.schedule_stats import run_schedule_stats
from repro.scheduling.ep import SchedulerOptions, find_all_schedules, find_schedule
from repro.scheduling.serialize import schedule_to_json

BENCH_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


def test_pfc_scheduling_time(benchmark, capsys):
    stats = benchmark.pedantic(
        run_schedule_stats, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"PFC scheduling: {stats.schedule_nodes} schedule nodes, "
            f"{stats.await_nodes} await node(s), tree={stats.tree_nodes}, "
            f"{stats.seconds:.2f}s, channel bounds={stats.channel_bounds}"
        )
        print(f"  search counters: {stats.describe_counters()}")
        print("  [paper: a single task, all channels of unit size, in less than a minute]")
    assert stats.success
    assert stats.await_nodes == 1
    assert stats.all_control_channels_unit_size
    assert stats.seconds < 60.0


def test_scheduler_heuristic_ablation(benchmark, capsys):
    system = build_video_system(BENCH_CONFIG)

    def schedule_with(use_invariants: bool):
        return find_schedule(
            system.net,
            "src.controller.init",
            options=SchedulerOptions(use_invariant_heuristic=use_invariants, max_nodes=100_000),
            raise_on_failure=True,
        )

    guided = benchmark.pedantic(schedule_with, args=(True,), rounds=1, iterations=1)
    plain = schedule_with(False)
    with capsys.disabled():
        print()
        print(
            "ECS ordering ablation (PFC): "
            f"invariant-guided tree={guided.tree_nodes}, "
            f"tie-break only tree={plain.tree_nodes}"
        )
    assert guided.success and plain.success


def test_divisors_scheduling(benchmark):
    system = build_divisors_system()
    result = benchmark.pedantic(
        find_schedule,
        args=(system.net, "src.divisors.in"),
        kwargs={"raise_on_failure": True},
        rounds=3,
        iterations=1,
    )
    assert result.success


# ---------------------------------------------------------------------------
# CLI: serial vs. parallel, scalar vs. batched -> BENCH_scheduler.json
# ---------------------------------------------------------------------------


def _results_signature(results) -> Dict[str, Optional[str]]:
    return {
        source: (schedule_to_json(r.schedule) if r.schedule else None)
        for source, r in results.items()
    }


def _bench_case(
    name, net, *, backends: Sequence[str], workers: int, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall clock per backend, serial and parallel.

    Every (backend, serial/parallel) combination must produce byte-identical
    schedules -- ``identical_schedules`` records the cross-check.
    """
    per_backend: Dict[str, Dict[str, object]] = {}
    signatures = []
    sources = 0
    for backend in backends:
        serial_times: List[float] = []
        parallel_times: List[float] = []
        serial = parallel = None
        for _ in range(repeats):
            start = time.monotonic()
            serial = find_all_schedules(net, backend=backend)
            serial_times.append(time.monotonic() - start)
            start = time.monotonic()
            parallel = find_all_schedules(net, workers=workers, backend=backend)
            parallel_times.append(time.monotonic() - start)
        signatures.append(_results_signature(serial))
        signatures.append(_results_signature(parallel))
        sources = len(serial)
        best_serial = min(serial_times)
        best_parallel = min(parallel_times)
        per_backend[backend] = {
            "serial_seconds": round(best_serial, 4),
            "parallel_seconds": round(best_parallel, 4),
            "parallel_speedup": (
                round(best_serial / best_parallel, 3) if best_parallel else None
            ),
        }
    row: Dict[str, object] = {
        "case": name,
        "sources": sources,
        "repeats": repeats,
        "backends": per_backend,
        "identical_schedules": all(sig == signatures[0] for sig in signatures),
    }
    if "scalar" in per_backend and "batched" in per_backend:
        scalar_s = per_backend["scalar"]["serial_seconds"]
        batched_s = per_backend["batched"]["serial_seconds"]
        row["batched_speedup"] = round(scalar_s / batched_s, 3) if batched_s else None
    if "scalar" in per_backend and "kernel" in per_backend:
        scalar_s = per_backend["scalar"]["serial_seconds"]
        kernel_s = per_backend["kernel"]["serial_seconds"]
        row["kernel_speedup"] = round(scalar_s / kernel_s, 3) if kernel_s else None
    if "batched" in per_backend and "kernel" in per_backend:
        batched_s = per_backend["batched"]["serial_seconds"]
        kernel_s = per_backend["kernel"]["serial_seconds"]
        row["kernel_vs_batched"] = (
            round(batched_s / kernel_s, 3) if kernel_s else None
        )
    return row


# ---------------------------------------------------------------------------
# --profile: the cProfile hot-function table
# ---------------------------------------------------------------------------

PROFILE_TOP_N = 15


def _profile_case(name: str, net, *, backends: Sequence[str]) -> Dict[str, object]:
    """One profiled serial ``find_all_schedules`` run per backend.

    Returns the top :data:`PROFILE_TOP_N` functions by cumulative time --
    the table that identifies where a backend actually spends its wall
    clock (this is how the expand/mask/intern dispatch sequence was found
    worth fusing).
    """
    import cProfile
    import pstats

    rows = []
    for backend in backends:
        profiler = cProfile.Profile()
        profiler.enable()
        find_all_schedules(net, backend=backend)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        top = []
        for func in stats.fcn_list[:PROFILE_TOP_N]:  # (file, line, name)
            cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
            filename, line, func_name = func
            top.append(
                {
                    "function": func_name,
                    "file": os.path.basename(filename) if filename else filename,
                    "line": line,
                    "calls": ncalls,
                    "primitive_calls": cc,
                    "total_seconds": round(tottime, 6),
                    "cumulative_seconds": round(cumtime, 6),
                }
            )
        rows.append({"case": name, "backend": backend, "top": top})
    return rows


def _run_profile_phase(cases, *, backends: Sequence[str]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, net in cases:
        rows.extend(_profile_case(name, net, backends=backends))
    return rows


def _kernel_info() -> Dict[str, object]:
    """Which fused-kernel tier this host's timings exercised, and why."""
    from repro.petrinet.kernel import (
        compiled_tier_available,
        kernel_enabled,
        resolve_kernel_tier,
    )

    return {
        "tier": resolve_kernel_tier(warn=False),
        "enabled": kernel_enabled(),
        "compiled_available": compiled_tier_available(),
    }


def _shm_case(name: str, net, *, workers: int) -> Dict[str, object]:
    """Per-worker attach-vs-rebuild timing for one case's analysis plane.

    Publishes the net's shared-memory plane, then times a cold
    :func:`~repro.petrinet.shm.attach_net` against a cold
    unpickle-plus-:class:`StructuralAnalysis` rebuild -- the two transports
    a scheduling worker actually chooses between -- once per worker.  Each
    sample runs in its own fresh single-task pool: submitting N quick
    tasks to one N-wide pool does not guarantee N distinct processes (the
    first worker can drain every task before a second ever spawns), which
    would silently report warm-process numbers as per-worker ones.
    """
    from repro.petrinet import shm as shm_plane

    plane = shm_plane.acquire_shared_plane(net)
    if plane is None:
        return {"case": name, "published": False}
    payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        samples = []
        for _ in range(workers):
            with ProcessPoolExecutor(max_workers=1) as pool:
                samples.append(
                    pool.submit(
                        shm_plane.measure_attach_vs_rebuild, plane.handle, payload
                    ).result()
                )
    finally:
        plane.release()
    attach = [sample["attach_seconds"] for sample in samples]
    rebuild = [sample["rebuild_seconds"] for sample in samples]
    best_attach = min(attach)
    best_rebuild = min(rebuild)
    return {
        "case": name,
        "published": True,
        "workers": workers,
        "per_worker": [
            {
                "pid": sample["pid"],
                "attach_seconds": round(sample["attach_seconds"], 6),
                "rebuild_seconds": round(sample["rebuild_seconds"], 6),
            }
            for sample in samples
        ],
        "attach_seconds_best": round(best_attach, 6),
        "rebuild_seconds_best": round(best_rebuild, 6),
        "attach_speedup": round(best_rebuild / best_attach, 3) if best_attach else None,
    }


def _run_shm_phase(cases, *, workers: int) -> Dict[str, object]:
    """The ``shm`` section of the report: plane status + per-case timings."""
    from repro.petrinet import shm as shm_plane

    enabled = shm_plane.shm_enabled() and shm_plane.shm_available()
    info: Dict[str, object] = {"enabled": enabled}
    if not enabled:
        return info
    info["cases"] = [_shm_case(name, net, workers=workers) for name, net in cases]
    return info


def _intra_case(
    name: str, net, *, worker_counts: Sequence[int], repeats: int
) -> Dict[str, object]:
    """One single-source case timed at each intra-search worker count.

    Every worker count must reproduce the ``intra_workers=1`` schedule,
    fingerprint and tree size byte-for-byte (the repro.scheduling.intra
    determinism contract); ``identical_schedules`` records the cross-check
    and the per-count ``stats`` expose how much was actually stolen.
    """
    from repro.scheduling.serialize import schedule_fingerprint

    source = net.uncontrollable_sources()[0]
    timings: Dict[str, float] = {}
    stats: Dict[str, Dict[str, object]] = {}
    signatures = []
    for count in worker_counts:
        options = SchedulerOptions(intra_workers=count)
        times: List[float] = []
        result = None
        for _ in range(repeats):
            start = time.monotonic()
            result = find_schedule(net, source, options=options)
            times.append(time.monotonic() - start)
        timings[str(count)] = round(min(times), 4)
        signatures.append(
            (
                schedule_to_json(result.schedule) if result.schedule else None,
                schedule_fingerprint(result.schedule) if result.schedule else None,
                result.tree_nodes,
            )
        )
        if result.intra_stats is not None:
            stats[str(count)] = {
                key: value
                for key, value in result.intra_stats.items()
                if key != "workers"
            }
    base = timings[str(worker_counts[0])]
    speedups = {
        str(count): (
            round(base / timings[str(count)], 3) if timings[str(count)] else None
        )
        for count in worker_counts[1:]
    }
    return {
        "case": name,
        "source": source,
        "seconds": timings,
        "intra_speedup": speedups,
        "stats": stats,
        "identical_schedules": all(sig == signatures[0] for sig in signatures),
    }


def _run_intra_phase(
    cases, *, worker_counts: Sequence[int], repeats: int
) -> Dict[str, object]:
    """The ``intra`` section: intra-search work stealing on the PFC cases.

    Only the single-source pfc geometries are timed -- they are exactly the
    nets the per-source fan-out cannot help, which is the gap the intra
    layer exists to close.
    """
    cpu_count = os.cpu_count() or 1
    info: Dict[str, object] = {
        "workers_timed": list(worker_counts),
        "cpu_count": cpu_count,
        "cases": [
            _intra_case(name, net, worker_counts=worker_counts, repeats=repeats)
            for name, net in cases
            if name.startswith("pfc")
        ],
    }
    if cpu_count < max(worker_counts):
        # mirror the workers_exceed_cores flag of the per-source section:
        # identity checks remain meaningful here, the speedups do not
        info["workers_exceed_cores"] = True
        info["note"] = (
            f"cpu_count={cpu_count} is below the largest intra worker count "
            f"{max(worker_counts)}: helper processes time-share the cores, so "
            "intra_speedup records determinism overhead, not parallel gain"
        )
    return info


#: Candidate budget of the bench's enumerate->score->select phase.
OBJECTIVE_CANDIDATE_LIMIT = 32

#: Corpus case seed whose cost-selected schedule strictly beats the
#: first-found one (multi_source family, sink source ``src.s2_p0.ev_s2_p0``:
#: predicted 1151 vs 1175 cycles) -- the concrete witness that the "cost"
#: objective can pay off, kept in the report as a regression anchor.
OBJECTIVE_CORPUS_SEED = 20260877


def _objective_source_row(
    net, source: str, *, backends: Sequence[str], candidate_limit: int
) -> Dict[str, object]:
    """Cost-objective selection for one source, cross-checked per backend.

    Every backend must enumerate the same candidate set and elect the same
    winner (score *and* fingerprint); ``identical_selection`` records the
    check and ``improvement`` is first-found minus selected predicted cycles
    (positive = the cost objective found a strictly cheaper schedule).
    """
    stats_by_backend: Dict[str, Dict[str, object]] = {}
    seconds: Dict[str, float] = {}
    for backend in backends:
        start = time.monotonic()
        result = find_schedule(
            net,
            source,
            options=SchedulerOptions(
                objective="cost",
                candidate_limit=candidate_limit,
                backend=backend,
                max_nodes=200_000,
            ),
        )
        seconds[backend] = round(time.monotonic() - start, 4)
        stats_by_backend[backend] = dict(result.objective_stats or {})
    reference = stats_by_backend[backends[0]]
    identical = all(
        stats.get("selected_fingerprint") == reference.get("selected_fingerprint")
        and stats.get("selected_score") == reference.get("selected_score")
        and stats.get("candidates") == reference.get("candidates")
        for stats in stats_by_backend.values()
    )
    first = reference.get("first_score")
    selected = reference.get("selected_score")
    return {
        "source": source,
        "candidates": reference.get("candidates"),
        "first_score": first,
        "selected_score": selected,
        "score_min": reference.get("score_min"),
        "score_max": reference.get("score_max"),
        "selected_is_first": reference.get("selected_is_first"),
        "improvement": (
            first - selected
            if isinstance(first, int) and isinstance(selected, int)
            else None
        ),
        "seconds": seconds,
        "identical_selection": identical,
    }


def _run_objective_phase(
    cases,
    *,
    backends: Sequence[str],
    candidate_limit: int = OBJECTIVE_CANDIDATE_LIMIT,
) -> Dict[str, object]:
    """The ``objective`` section: enumerate->score->select on PFC + corpus.

    Runs the ``"cost"`` objective over the pfc bench nets plus the pinned
    :data:`OBJECTIVE_CORPUS_SEED` corpus case, recording per source how many
    candidates were enumerated, the score spread, and the selected-vs-first
    predicted cycles.  ``improvement_found`` asserts the headline claim --
    at least one net where cost selection strictly beats first-found.
    """
    from repro.corpus.generator import generate_spec
    from repro.corpus.topologies import build_case
    from repro.flowc.linker import link

    corpus_spec = generate_spec(OBJECTIVE_CORPUS_SEED, "multi_source")
    corpus_net = link(build_case(corpus_spec).network).net
    timed = [
        (name, net) for name, net in cases if name.startswith("pfc")
    ] + [(corpus_spec.label(), corpus_net)]
    rows = []
    for name, net in timed:
        source_rows = [
            _objective_source_row(
                net, source, backends=backends, candidate_limit=candidate_limit
            )
            for source in net.uncontrollable_sources()
        ]
        rows.append(
            {
                "case": name,
                "sources": source_rows,
                "identical_selection": all(
                    row["identical_selection"] for row in source_rows
                ),
            }
        )
    return {
        "candidate_limit": candidate_limit,
        "backends": list(backends),
        "cases": rows,
        "identical_selection": all(row["identical_selection"] for row in rows),
        "improvement_found": any(
            (source_row.get("improvement") or 0) > 0
            for row in rows
            for source_row in row["sources"]
        ),
    }


def _cache_case(name: str, net) -> Dict[str, object]:
    """Time one case's cache-active scheduling path (cold or warm process).

    ``process_seconds`` is what this process paid end to end (search +
    persist when cold, validated disk replay when warm);
    ``disk_replay_seconds`` re-times the workload with the in-memory L1
    dropped, i.e. the cost a *fresh* process would pay now that the disk is
    hot.  Replays are asserted byte-identical to the first pass.
    """
    from repro.scheduling.warmstart import GLOBAL_SCHEDULE_CACHE

    GLOBAL_SCHEDULE_CACHE.drop_memory()
    start = time.monotonic()
    first = find_all_schedules(net)
    process_seconds = time.monotonic() - start
    replayed = sum(1 for r in first.values() if r.from_cache)
    mode = (
        "warm"
        if replayed == len(first)
        else ("cold" if replayed == 0 else "mixed")
    )
    GLOBAL_SCHEDULE_CACHE.drop_memory()
    start = time.monotonic()
    again = find_all_schedules(net)
    disk_replay_seconds = time.monotonic() - start
    return {
        "case": name,
        "sources": len(first),
        "mode": mode,
        "replayed_from_disk": replayed,
        "process_seconds": round(process_seconds, 4),
        "disk_replay_seconds": round(disk_replay_seconds, 4),
        "replay_identical": _results_signature(first) == _results_signature(again),
    }


def _run_cache_phase(
    cases, *, cache_dir: Optional[str], cache_clear: bool
) -> Dict[str, object]:
    """Activate the persistent cache, time every case through it, report.

    Deactivates the cache before returning so the regular backend timing
    loop is never polluted by replays.
    """
    import repro.cache as artifact_cache
    from repro.scheduling.warmstart import GLOBAL_SCHEDULE_CACHE, LIVE_SEARCH_COUNTERS

    previous = artifact_cache.active_store()
    store = artifact_cache.activate(path=cache_dir)
    if cache_clear:
        store.clear()
    entries_before = len(store.entries())
    rows = [_cache_case(name, net) for name, net in cases]
    entries_after = len(store.entries())
    warmstart_stats = GLOBAL_SCHEDULE_CACHE.stats.as_dict()
    info = {
        "enabled": True,
        "location": store.describe(),
        "backend": store.backend_name,
        "schema_version": artifact_cache.SCHEMA_VERSION,
        "entries_before": entries_before,
        "entries_after": entries_after,
        "warmstart": warmstart_stats,
        "disk_hits": warmstart_stats["disk_hits"],
        "live_search_nodes_expanded": LIVE_SEARCH_COUNTERS.nodes_expanded,
        "warm_process": all(row["mode"] == "warm" for row in rows),
        "store": store.stats.as_dict(),
        "cases": rows,
    }
    # hand back whatever store was active before the phase (a caller's
    # explicit activate() must survive run_cli_bench), closing only our own
    store.close()
    if previous is not None and previous is not store:
        artifact_cache.activate(store=previous)
    else:
        artifact_cache.deactivate()
    GLOBAL_SCHEDULE_CACHE.drop_memory()
    return info


def run_cli_bench(
    *,
    workers: int,
    quick: bool = False,
    repeats: Optional[int] = None,
    backends: Sequence[str] = ("scalar", "batched", "kernel"),
    cache: bool = False,
    cache_dir: Optional[str] = None,
    cache_clear: bool = False,
    profile: bool = False,
    intra_workers: int = 4,
) -> Dict[str, object]:
    repeats = repeats or (1 if quick else 3)
    cases = [
        ("pfc_4x5", build_video_system(VideoAppConfig(4, 5)).net),
        # eight independent sources: the shape the per-source fan-out targets
        ("multi_source_8x6", random_multi_source_net(8, 6, seed=1)),
    ]
    if not quick:
        cases.insert(1, ("pfc_10x10", build_video_system(VideoAppConfig(10, 10)).net))
    import repro.cache as artifact_cache

    cache_info: Dict[str, object] = {"enabled": False}
    if cache:
        cache_info = _run_cache_phase(cases, cache_dir=cache_dir, cache_clear=cache_clear)
    elif cache_clear:
        # honour --cache-clear on its own: wipe the store without timing it
        store = artifact_cache.open_store(cache_dir)
        store.clear()
        store.close()
    # The backend timing loop must always measure real EP searches: hide any
    # active cache (REPRO_CACHE=1 from the environment, or a caller's
    # activate()) for its duration -- replays would report near-zero
    # "search" times -- and restore it afterwards.
    with artifact_cache.suspended():
        rows = [
            _bench_case(name, net, backends=backends, workers=workers, repeats=repeats)
            for name, net in cases
        ]
        profile_rows = (
            _run_profile_phase(cases, backends=backends) if profile else None
        )
        intra_counts = sorted(
            {1}
            | {count for count in (2, 4) if count <= intra_workers}
            | ({intra_workers} if intra_workers > 1 else set())
        )
        intra_info = (
            _run_intra_phase(cases, worker_counts=intra_counts, repeats=repeats)
            if len(intra_counts) > 1
            else None
        )
        objective_info = _run_objective_phase(cases, backends=backends)
    shm_info = _run_shm_phase(cases, workers=workers)
    cpu_count = os.cpu_count() or 1
    report: Dict[str, object] = {
        "benchmark": (
            "find_all_schedules: serial vs parallel, scalar vs batched vs kernel"
        ),
        "backends": list(backends),
        "workers": workers,
        "cpu_count": cpu_count,
        "workers_exceed_cores": workers > cpu_count,
        "python": sys.version.split()[0],
        "quick": quick,
        "kernel": _kernel_info(),
        "cache": cache_info,
        "shm": shm_info,
        "cases": rows,
    }
    if intra_info is not None:
        report["intra"] = intra_info
    report["objective"] = objective_info
    if profile_rows is not None:
        report["profile"] = {"top_n": PROFILE_TOP_N, "cases": profile_rows}
    if workers > cpu_count:
        # the recorded parallel_speedup < 1 is then a property of the host,
        # not of the parallel layer; say so next to the numbers
        report["workers_warning"] = (
            f"workers={workers} exceeds cpu_count={cpu_count}: parallel "
            "timings oversubscribe the machine and speedups below 1x are "
            "expected"
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time serial/parallel and scalar/batched find_all_schedules, emit JSON."
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, os.cpu_count() or 1),
        help="process-pool width for the parallel path (default: max(2, cpus))",
    )
    parser.add_argument(
        "--backend",
        choices=("scalar", "batched", "kernel", "auto", "both", "all"),
        default="all",
        help="EP-search backend to time; 'all' runs scalar, batched and "
        "kernel and reports the relative speedups; 'both' keeps the "
        "pre-kernel scalar+batched pair (default: all)",
    )
    parser.add_argument(
        "--intra-workers",
        type=int,
        default=4,
        help="largest intra-search worker count to time on the pfc cases "
        "(the 'intra' section runs workers 1..N from {1,2,4,N}; 1 disables "
        "the section; default: 4)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: skip the 10x10 geometry (runs pfc_4x5 and "
        "multi_source_8x6), one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="override best-of repeat count"
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="activate the persistent artifact cache (.cache/repro or "
        "$REPRO_CACHE_DIR) and record cold/warm process timings",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force the cache off even if REPRO_CACHE is set in the environment",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="clear the persistent cache before the run (implies nothing else)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory for --cache (default: $REPRO_CACHE_DIR or .cache/repro)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="additionally run each case once per backend under cProfile and "
        "record the top hot functions in a 'profile' section of the JSON",
    )
    parser.add_argument(
        "--objective-only",
        action="store_true",
        help="read-modify-write mode: run only the enumerate->score->select "
        "phase and merge its 'objective' section into the existing JSON "
        "report, leaving every other section untouched",
    )
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="where to write the JSON report (default: ./BENCH_scheduler.json)",
    )
    args = parser.parse_args(argv)
    if args.backend == "all":
        backends = ("scalar", "batched", "kernel")
    elif args.backend == "both":
        backends = ("scalar", "batched")
    else:
        backends = (args.backend,)
    if args.no_cache:
        import repro.cache as artifact_cache

        artifact_cache.deactivate()
    if args.objective_only:
        cases = [
            ("pfc_4x5", build_video_system(VideoAppConfig(4, 5)).net),
        ]
        objective_info = _run_objective_phase(cases, backends=backends)
        try:
            with open(args.output) as handle:
                report = json.load(handle)
        except FileNotFoundError:
            report = {}
        report["objective"] = objective_info
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        _print_objective(objective_info)
        print(f"wrote {args.output} (objective section only)")
        return 0 if objective_info["identical_selection"] else 1
    report = run_cli_bench(
        workers=args.workers,
        quick=args.quick,
        repeats=args.repeats,
        backends=backends,
        cache=args.cache and not args.no_cache,
        cache_dir=args.cache_dir,
        cache_clear=args.cache_clear,
        profile=args.profile,
        intra_workers=args.intra_workers,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    if "workers_warning" in report:
        print(f"WARNING: {report['workers_warning']}", file=sys.stderr)
    shm_info = report["shm"]
    if shm_info.get("enabled"):
        for row in shm_info["cases"]:
            if not row.get("published"):
                print(f"shm {row['case']:<18} plane not published (fell back)")
                continue
            print(
                f"shm {row['case']:<18} attach={row['attach_seconds_best']:.4f}s "
                f"rebuild={row['rebuild_seconds_best']:.4f}s "
                f"speedup={row['attach_speedup']}x over {row['workers']} worker(s)"
            )
    cache_info = report["cache"]
    if cache_info["enabled"]:
        for row in cache_info["cases"]:
            print(
                f"cache {row['case']:<18} mode={row['mode']:<5} "
                f"process={row['process_seconds']:.3f}s "
                f"disk_replay={row['disk_replay_seconds']:.3f}s "
                f"identical={row['replay_identical']}"
            )
        print(
            f"cache store {cache_info['location']}: "
            f"{cache_info['entries_after']} entries, "
            f"disk_hits={cache_info['disk_hits']}, "
            f"warm_process={cache_info['warm_process']}"
        )
    kernel_info = report["kernel"]
    print(
        f"kernel tier: {kernel_info['tier']} "
        f"(compiled_available={kernel_info['compiled_available']})"
    )
    for row in report["cases"]:
        timings = " ".join(
            f"{backend}: serial={data['serial_seconds']:.3f}s "
            f"parallel[{args.workers}]={data['parallel_seconds']:.3f}s"
            for backend, data in row["backends"].items()
        )
        extra = "".join(
            f" {key}={row[key]}x"
            for key in ("batched_speedup", "kernel_speedup", "kernel_vs_batched")
            if key in row
        )
        print(
            f"{row['case']:<18} sources={row['sources']:<3} {timings}"
            f"{extra} identical={row['identical_schedules']}"
        )
    if "profile" in report:
        for entry in report["profile"]["cases"]:
            hottest = entry["top"][0] if entry["top"] else None
            if hottest:
                print(
                    f"profile {entry['case']:<14} {entry['backend']:<8} "
                    f"hottest={hottest['function']} "
                    f"cum={hottest['cumulative_seconds']:.3f}s"
                )
    _print_objective(report["objective"])
    if "intra" in report:
        intra_info = report["intra"]
        if "note" in intra_info:
            print(f"NOTE: {intra_info['note']}", file=sys.stderr)
        for row in intra_info["cases"]:
            timings = " ".join(
                f"w{count}={seconds:.3f}s"
                for count, seconds in row["seconds"].items()
            )
            speedups = " ".join(
                f"x{count}={ratio}" for count, ratio in row["intra_speedup"].items()
            )
            print(
                f"intra {row['case']:<16} {timings} {speedups} "
                f"identical={row['identical_schedules']}"
            )
    print(f"wrote {args.output}")
    if not all(row["identical_schedules"] for row in report["cases"]):
        print("ERROR: schedules diverge across backends/parallelism", file=sys.stderr)
        return 1
    if "intra" in report and not all(
        row["identical_schedules"] for row in report["intra"]["cases"]
    ):
        print(
            "ERROR: schedules diverge across intra-search worker counts",
            file=sys.stderr,
        )
        return 1
    if not report["objective"]["identical_selection"]:
        print(
            "ERROR: cost-objective selection diverges across backends",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_objective(objective_info: Dict[str, object]) -> None:
    for row in objective_info["cases"]:
        for source_row in row["sources"]:
            print(
                f"objective {row['case']:<22} {source_row['source']:<22} "
                f"cands={source_row['candidates']} "
                f"spread=[{source_row['score_min']}, {source_row['score_max']}] "
                f"first={source_row['first_score']} "
                f"selected={source_row['selected_score']} "
                f"improvement={source_row['improvement']} "
                f"identical={source_row['identical_selection']}"
            )
    print(
        f"objective: candidate_limit={objective_info['candidate_limit']} "
        f"identical_selection={objective_info['identical_selection']} "
        f"improvement_found={objective_info['improvement_found']}"
    )


if __name__ == "__main__":
    raise SystemExit(main())
