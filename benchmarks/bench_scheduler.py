"""Benchmarks of the scheduling algorithm itself.

* E4: the Section 8.2 claim -- the PFC system is scheduled into a single task
  with unit-size control channels in well under a minute.
* Ablation: T-invariant-guided ECS ordering vs. the plain tie-break ordering.
"""

from __future__ import annotations

from repro.apps.divisors import build_divisors_system
from repro.apps.video import VideoAppConfig, build_video_system
from repro.experiments.schedule_stats import run_schedule_stats
from repro.scheduling.ep import SchedulerOptions, find_schedule

BENCH_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


def test_pfc_scheduling_time(benchmark, capsys):
    stats = benchmark.pedantic(
        run_schedule_stats, args=(BENCH_CONFIG,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"PFC scheduling: {stats.schedule_nodes} schedule nodes, "
            f"{stats.await_nodes} await node(s), tree={stats.tree_nodes}, "
            f"{stats.seconds:.2f}s, channel bounds={stats.channel_bounds}"
        )
        print(f"  search counters: {stats.describe_counters()}")
        print("  [paper: a single task, all channels of unit size, in less than a minute]")
    assert stats.success
    assert stats.await_nodes == 1
    assert stats.all_control_channels_unit_size
    assert stats.seconds < 60.0


def test_scheduler_heuristic_ablation(benchmark, capsys):
    system = build_video_system(BENCH_CONFIG)

    def schedule_with(use_invariants: bool):
        return find_schedule(
            system.net,
            "src.controller.init",
            options=SchedulerOptions(use_invariant_heuristic=use_invariants, max_nodes=100_000),
            raise_on_failure=True,
        )

    guided = benchmark.pedantic(schedule_with, args=(True,), rounds=1, iterations=1)
    plain = schedule_with(False)
    with capsys.disabled():
        print()
        print(
            "ECS ordering ablation (PFC): "
            f"invariant-guided tree={guided.tree_nodes}, "
            f"tie-break only tree={plain.tree_nodes}"
        )
    assert guided.success and plain.success


def test_divisors_scheduling(benchmark):
    system = build_divisors_system()
    result = benchmark.pedantic(
        find_schedule,
        args=(system.net, "src.divisors.in"),
        kwargs={"raise_on_failure": True},
        rounds=3,
        iterations=1,
    )
    assert result.success
