"""Quickstart: compile, schedule and synthesize the divisors process (Figure 1).

Run with ``python examples/quickstart.py [scalar|batched|auto]``.

The example walks the full flow of the paper on its running example:
FlowC source -> Petri net (Figure 3) -> single-source schedule -> code
segments -> synthesized C task, and finally executes the synthesized task to
compute divisors.  It also shows the current API surface: the EP backend
knob (``SchedulerOptions.backend``), the search counters on the result, and
the warm-start / persistent cache (set ``REPRO_CACHE=1`` before running to
persist the schedule under ``.cache/repro/`` -- a second run then replays
it from disk instead of re-searching).
"""

from __future__ import annotations

import sys

from repro.apps.divisors import DIVISORS_SOURCE, build_divisors_network
from repro.codegen.synthesis import synthesize_task
from repro.codegen.task import ExecutableTask
from repro.flowc.linker import link
from repro.runtime.channels import EnvironmentSink, EnvironmentSource, PortBinding
from repro.scheduling.ep import SchedulerOptions, resolve_backend_for
from repro.scheduling.warmstart import cached_find_schedule


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "auto"
    print("=== FlowC source (Figure 1) ===")
    print(DIVISORS_SOURCE)

    # 1. compile + link the one-process network
    network = build_divisors_network()
    system = link(network)
    print("=== Linked Petri net ===")
    print(f"places={len(system.net.places)}  transitions={len(system.net.transitions)}")
    print(f"uncontrollable inputs: {system.net.uncontrollable_sources()}")

    # 2. quasi-static scheduling for the uncontrollable input port `in`.
    # cached_find_schedule layers the warm-start caches over find_schedule:
    # in-memory always, plus the disk store when REPRO_CACHE=1 is set.
    options = SchedulerOptions(backend=backend)
    print(f"\nrequested backend: {backend!r} "
          f"-> resolves to {resolve_backend_for(system.net, options)!r}")
    result = cached_find_schedule(
        system.net, "src.divisors.in", options=options, raise_on_failure=True
    )
    schedule = result.schedule
    print("=== Schedule ===")
    print(
        f"{len(schedule)} nodes, {len(schedule.await_nodes())} await node(s), "
        f"explored {result.tree_nodes} tree nodes in {result.elapsed_seconds:.3f}s"
        f"{' (replayed from cache)' if result.from_cache else ''}"
    )
    print(f"search counters: {result.counters.as_dict()}")
    print("channel bounds (tokens):", schedule.channel_bounds())

    # 3. code generation
    task = synthesize_task(system, schedule)
    print("\n=== Synthesized C task ===")
    print(task.full_source)

    # 4. execute the synthesized task (interpreted) on a few inputs
    binding = PortBinding()
    binding.bind_source("in", EnvironmentSource("in"))
    binding.bind_sink("max", EnvironmentSink("max"))
    binding.bind_sink("all", EnvironmentSink("all"))
    executable = ExecutableTask(system, schedule, binding)
    for value in (12, 7, 36):
        executable.react(value)
        print(f"input {value}: greatest divisor {binding.sinks['max'].values[-1]}")
    print("all divisors emitted:", binding.sinks["all"].values)


if __name__ == "__main__":
    main()
