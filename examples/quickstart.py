"""Quickstart: compile, schedule and synthesize the divisors process (Figure 1).

Run with ``python examples/quickstart.py``.

The example walks the full flow of the paper on its running example:
FlowC source -> Petri net (Figure 3) -> single-source schedule -> code
segments -> synthesized C task, and finally executes the synthesized task to
compute divisors.
"""

from __future__ import annotations

from repro.apps.divisors import DIVISORS_SOURCE, build_divisors_network
from repro.codegen.synthesis import synthesize_task
from repro.codegen.task import ExecutableTask
from repro.flowc.linker import link
from repro.runtime.channels import EnvironmentSink, EnvironmentSource, PortBinding
from repro.scheduling.ep import find_schedule


def main() -> None:
    print("=== FlowC source (Figure 1) ===")
    print(DIVISORS_SOURCE)

    # 1. compile + link the one-process network
    network = build_divisors_network()
    system = link(network)
    print("=== Linked Petri net ===")
    print(f"places={len(system.net.places)}  transitions={len(system.net.transitions)}")
    print(f"uncontrollable inputs: {system.net.uncontrollable_sources()}")

    # 2. quasi-static scheduling for the uncontrollable input port `in`
    result = find_schedule(system.net, "src.divisors.in", raise_on_failure=True)
    schedule = result.schedule
    print("\n=== Schedule ===")
    print(
        f"{len(schedule)} nodes, {len(schedule.await_nodes())} await node(s), "
        f"explored {result.tree_nodes} tree nodes in {result.elapsed_seconds:.3f}s"
    )
    print("channel bounds (tokens):", schedule.channel_bounds())

    # 3. code generation
    task = synthesize_task(system, schedule)
    print("\n=== Synthesized C task ===")
    print(task.full_source)

    # 4. execute the synthesized task (interpreted) on a few inputs
    binding = PortBinding()
    binding.bind_source("in", EnvironmentSource("in"))
    binding.bind_sink("max", EnvironmentSink("max"))
    binding.bind_sink("all", EnvironmentSink("all"))
    executable = ExecutableTask(system, schedule, binding)
    for value in (12, 7, 36):
        executable.react(value)
        print(f"input {value}: greatest divisor {binding.sinks['max'].values[-1]}")
    print("all divisors emitted:", binding.sinks["all"].values)


if __name__ == "__main__":
    main()
