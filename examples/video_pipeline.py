"""The industrial video application of Section 8 (producer / filter /
consumer / controller), end to end.

Run with ``python examples/video_pipeline.py [lines pixels frames [backend]]``.

The example builds the four-process network of Figure 18, schedules it into a
single task triggered by ``init``, and compares the synthesized implementation
against the 4-task round-robin baseline: identical outputs, the cycle ratios
of Table 1 and the code sizes of Table 2.

Scheduling goes through the warm-start cache, so with ``REPRO_CACHE=1`` in
the environment a repeated run (e.g. the paper's 10x10 geometry, a few
seconds of search) replays the schedule from ``.cache/repro/`` instead of
re-searching; ``backend`` picks the EP hot-loop (scalar / batched / auto).
"""

from __future__ import annotations

import sys

from repro.apps.video import VideoAppConfig, build_video_system
from repro.codegen.synthesis import baseline_code_size, synthesize_task, synthesized_code_size
from repro.runtime.simulation import MultiTaskSimulation, SingleTaskSimulation
from repro.scheduling.ep import SchedulerOptions
from repro.scheduling.warmstart import cached_find_schedule


def main() -> None:
    lines = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    pixels = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    frames = int(sys.argv[3]) if len(sys.argv) > 3 else 10
    backend = sys.argv[4] if len(sys.argv) > 4 else "auto"
    config = VideoAppConfig(lines_per_frame=lines, pixels_per_line=pixels)
    print(f"PFC video application: {lines} lines x {pixels} pixels, {frames} frames")

    system = build_video_system(config)
    print(f"linked net: {system.net.stats()}")

    result = cached_find_schedule(
        system.net,
        "src.controller.init",
        options=SchedulerOptions(max_nodes=200_000, backend=backend),
        raise_on_failure=True,
    )
    schedule = result.schedule
    print(
        f"schedule: {len(schedule)} nodes, {len(schedule.await_nodes())} await node(s), "
        f"computed in {result.elapsed_seconds:.1f}s"
        f"{' (replayed from cache)' if result.from_cache else ''}"
    )
    bounds = {}
    for place, bound in schedule.channel_bounds().items():
        channel = system.channel_of_place(place)
        if channel:
            bounds[channel] = bound
    print(f"channel sizes determined by the scheduler: {bounds}")

    stimulus = {"init": [frame % 2 for frame in range(frames)]}
    multi = MultiTaskSimulation(system, channel_capacity=100, stimulus=stimulus).run()
    single = SingleTaskSimulation(
        system, schedules={"src.controller.init": schedule}
    ).run(stimulus)
    assert multi.outputs.by_port == single.outputs.by_port, "implementations must agree"
    print(f"both implementations emitted {len(single.outputs.port('display'))} pixels "
          f"and {len(single.outputs.port('ack'))} acknowledgements, outputs identical")

    print("\nexecution cycles (cost model):")
    for profile in ("pfc", "pfc-O", "pfc-O2"):
        m = multi.cycles(profile)
        s = single.cycles(profile)
        print(f"  {profile:<7} 4 tasks: {m:>12,.0f}   1 task: {s:>12,.0f}   ratio {m / s:.1f}")

    task = synthesize_task(system, schedule)
    print("\ncode size (bytes, communication inlined):")
    for profile in ("pfc", "pfc-O", "pfc-O2"):
        base = baseline_code_size(system, profile=profile)
        single_size = synthesized_code_size(task, system, profile=profile)
        print(
            f"  {profile:<7} 4 tasks total: {base['total']:>6}   1 task: {single_size:>6}   "
            f"ratio {base['total'] / single_size:.1f}"
        )
    print("\nfirst lines of the generated ISR:")
    print("\n".join(task.run_section.splitlines()[:20]))


if __name__ == "__main__":
    main()
