"""Multi-rate producer/consumer and pipeline workloads.

Run with ``python examples/multirate_pipeline.py``.

Demonstrates multi-rate communication (bursts of several items per port
operation), the channel bounds the scheduler derives, the independence /
executability machinery on systems with several pipeline stages, and
``find_all_schedules`` -- the entry point that schedules *every*
uncontrollable input (serially here; pass ``workers=N`` to fan out, set
``REPRO_CACHE=1`` to persist the outcomes across runs).
"""

from __future__ import annotations

from repro.apps.workloads import build_pipeline_network, build_producer_consumer_network
from repro.flowc.linker import link
from repro.runtime.simulation import MultiTaskSimulation, SingleTaskSimulation
from repro.scheduling.ep import find_all_schedules, find_schedule
from repro.scheduling.independence import is_independent_set
from repro.scheduling.runs import build_run


def producer_consumer_demo() -> None:
    print("=== multi-rate producer/consumer ===")
    for burst in (1, 2, 4):
        network = build_producer_consumer_network(items=8, burst=burst)
        system = link(network)
        results = find_all_schedules(system.net, raise_on_failure=True)
        assert list(results) == ["src.producer.trigger"]  # the single input
        schedule = results["src.producer.trigger"].schedule
        data_place = system.channel_places["data"]
        print(
            f"burst={burst}: schedule {len(schedule):>3} nodes, "
            f"data channel bound = {schedule.place_bounds()[data_place]} items"
        )
        stimulus = {"trigger": [3, 5]}
        multi = MultiTaskSimulation(system, channel_capacity=8, stimulus=stimulus).run()
        single = SingleTaskSimulation(
            system, schedules={"src.producer.trigger": schedule}
        ).run(stimulus)
        assert multi.outputs.by_port == single.outputs.by_port
        print(f"         checksums: {single.outputs.port('sum')}")


def pipeline_demo() -> None:
    print("\n=== three-stage pipeline ===")
    network = build_pipeline_network(stages=3, items=4)
    system = link(network)
    schedule = find_schedule(system.net, "src.stage0.trigger", raise_on_failure=True).schedule
    print(f"schedule: {len(schedule)} nodes, single source: {schedule.is_single_source()}")
    print(f"independent set: {is_independent_set([schedule])}")
    run = build_run({"src.stage0.trigger": schedule}, ["src.stage0.trigger"] * 4)
    print(f"a run of 4 events fires {len(run.transition_sequence())} transitions and "
          f"returns to the initial marking: {run.final_marking == system.net.initial_marking}")


if __name__ == "__main__":
    producer_consumer_demo()
    pipeline_demo()
