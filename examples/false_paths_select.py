"""False paths and synchronization-dependent choice (Section 7).

Run with ``python examples/false_paths_select.py``.

The example reproduces the Section 7.2 discussion:

1. the fixed-bound loop pair (processes A and B) compiled conservatively --
   every loop becomes a data-dependent choice -- is rejected by the scheduler
   because of false paths;
2. the same source compiled with constant-loop unrolling is schedulable with
   a one-place channel (the behaviour the paper obtains via the SELECT
   rewrite);
3. the SELECT rewrite itself compiles to a Petri net that is no longer
   unique-choice, illustrating the Section 7.1 consequences.
"""

from __future__ import annotations

from repro.apps.false_paths import (
    build_false_path_network,
    build_select_rewrite_network,
    link_with_unrolling,
    link_without_unrolling,
)
from repro.flowc.linker import link
from repro.petrinet.analysis import is_unique_choice_net
from repro.scheduling.ep import SchedulerOptions, find_schedule


def main() -> None:
    print("=== 1. conservative compilation (loops become data-dependent choices) ===")
    conservative = link_without_unrolling(build_false_path_network())
    result = find_schedule(
        conservative.net, "src.prodA.start", options=SchedulerOptions(max_nodes=800)
    )
    print(
        f"schedulable: {result.success}  (explored {result.tree_nodes} nodes, "
        f"{result.counters.nodes_expanded} EP expansions)"
    )
    print("reason:", result.failure_reason)
    print("-> the overflowing path where A keeps writing while B stops reading is a")
    print("   FALSE path, but the conservative abstraction cannot prove it false.\n")

    print("=== 2. constant-bound loops unrolled (this reproduction's remedy) ===")
    unrolled = link_with_unrolling(build_false_path_network())
    result = find_schedule(unrolled.net, "src.prodA.start", raise_on_failure=True)
    schedule = result.schedule
    c0_place = unrolled.channel_places["c0"]
    c1_place = unrolled.channel_places["c1"]
    print(
        f"schedulable: True  ({len(schedule)} schedule nodes, "
        f"{len(schedule.await_nodes())} await node)"
    )
    print(
        f"channel bounds: c0={schedule.place_bounds()[c0_place]}, "
        f"c1={schedule.place_bounds()[c1_place]}"
    )
    print("-> the synthesized task is the merged copy loop the paper shows:\n"
          "   for (i = 0; i < 10; i++) buf3[i] = buf1[i]; ...\n")

    print("=== 3. the SELECT rewrite of Section 7.2 ===")
    select_system = link(build_select_rewrite_network())
    print(f"net is unique-choice: {is_unique_choice_net(select_system.net)}")
    print("-> SELECT introduces non-equal, non-unique choice places: the behaviour is")
    print("   no longer schedule-independent and scheduling must treat the SELECT")
    print("   branches as scheduler-controlled alternatives (Section 7.1).")


if __name__ == "__main__":
    main()
